#include "src/core/mmio_region.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/core/trap_driver.h"
#include "src/telemetry/scoped_timer.h"
#include "src/telemetry/span.h"
#include "src/util/bitops.h"
#include "src/util/race_injector.h"

namespace aquila {

namespace {

#if AQUILA_TELEMETRY_ENABLED
// Fault-path latency histograms, classified at handler exit (a fault only
// learns whether it was major, minor, or a write upgrade at the end).
struct FaultMetrics {
  Histogram* fault_major = telemetry::Registry().GetHistogram("aquila.core.fault_major_cycles");
  Histogram* fault_minor = telemetry::Registry().GetHistogram("aquila.core.fault_minor_cycles");
  Histogram* fault_upgrade =
      telemetry::Registry().GetHistogram("aquila.core.fault_upgrade_cycles");
  Histogram* evict_batch = telemetry::Registry().GetHistogram("aquila.core.evict_batch_cycles");
  Histogram* msync = telemetry::Registry().GetHistogram("aquila.core.msync_cycles");
};

const FaultMetrics& GetFaultMetrics() {
  static FaultMetrics metrics;
  return metrics;
}
#endif

}  // namespace

AquilaMap::AquilaMap(Aquila* runtime, Backing* backing, uint64_t length, int prot)
    : runtime_(runtime), backing_(backing), length_(length) {
  vma_.page_count = AlignUp(length, kPageSize) / kPageSize;
  vma_.prot = prot;
  vma_.mapping_id = runtime_->next_mapping_id_.fetch_add(1, std::memory_order_relaxed);
  vma_.backing = this;
  if (runtime_->options().async_writeback) {
    engine_ = std::make_unique<AsyncWritebackEngine>(runtime_, this,
                                                     runtime_->options().async_queue_depth);
  }
}

Status AquilaMap::Install() {
  if (transparent_base_ != nullptr) {
    vma_.start_page = reinterpret_cast<uint64_t>(transparent_base_) >> kPageShift;
  } else if (runtime_->options().huge_pages) {
    // 2 MB-aligned VA, so every kSpanPages-aligned file span is also a 2 MB-
    // aligned virtual span (InstallHuge requires the alignment).
    vma_.start_page =
        runtime_->va_allocator_.AllocateAligned(vma_.page_count, kSpanPages) >> kPageShift;
    span_count_ = (vma_.page_count + kSpanPages - 1) / kSpanPages;
    spans_ = std::make_unique<HugeSpan[]>(span_count_);
  } else {
    vma_.start_page = runtime_->va_allocator_.Allocate(vma_.page_count) >> kPageShift;
  }
  return runtime_->vma_tree().Insert(&vma_);
}

Status AquilaMap::TearDown() {
  Vcpu& vcpu = ThisVcpu();
  // Removing the VMA first drains in-flight faults and makes the range
  // unreachable; afterwards the sweep below cannot race with new faults.
  AQUILA_RETURN_IF_ERROR(runtime_->vma_tree().Remove(&vma_));

  // Reap every async writeback/fill still in flight: completions free their
  // frames or restore failures dirty-in-place, where the sweep below
  // re-collects them for the final synchronous pass.
  if (engine_ != nullptr) {
    (void)engine_->Drain(vcpu);
  }

  // Huge spans split back to 4K first: the sweep below removes PTEs page by
  // page, and Remove() on a vaddr covered by a 2 MB leaf no-ops — it would
  // silently leak the live translation and the whole run.
  DemoteAllSpans(vcpu);

  PageCache& cache = runtime_->cache();
  WritebackPlanner planner;
  std::vector<PageShootdown> vpns;
  std::vector<FrameId> frames;
  for (uint64_t i = 0; i < vma_.page_count; i++) {
    uint64_t page = vma_.start_page + i;
    uint64_t vaddr = page << kPageShift;
    uint64_t key = MakeKey(vma_.mapping_id, i);
    FrameId frame;
    if (!cache.Lookup(key, &frame)) {
      continue;
    }
    Frame& f = cache.frame(frame);
    // Claim against concurrent evictors.
    FrameState expected = FrameState::kResident;
    while (!f.state.compare_exchange_weak(expected, FrameState::kEvicting,
                                          std::memory_order_acq_rel)) {
      if (expected != FrameState::kResident) {
        if (engine_ != nullptr && expected == FrameState::kWritingBack) {
          // A concurrent evictor submitted this page between our drain and
          // the claim; reap until its completion resolves the frame.
          (void)engine_->WaitOne(vcpu);
        }
        CpuRelax();
        expected = FrameState::kResident;
        if (!cache.Lookup(key, &frame)) {
          break;  // evictor took it
        }
      }
    }
    if (f.state.load(std::memory_order_acquire) != FrameState::kEvicting ||
        f.key.load(std::memory_order_relaxed) != key) {
      continue;
    }
    (void)runtime_->page_table().Remove(vaddr);
    cache.RemoveMapping(key);
    // Unified capture rule (CaptureShootdownPage): frame claimed (kEvicting),
    // PTE removed above.
    vpns.push_back(CaptureShootdownPage(f, page));
    if (f.dirty.load(std::memory_order_relaxed) != 0) {
      cache.ClearDirty(frame);
      planner.Add(WritebackItem{SortKey(i * kPageSize), i * kPageSize,
                                cache.FrameData(vcpu, frame), backing_, frame, this});
    }
    frames.push_back(frame);
  }

  // A writeback error at teardown loses the unwritten dirty data (there is
  // nowhere left to requeue it — the mapping is going away), but it must
  // not leak frames, TLB entries, or the VA range: capture the first
  // failure, finish the teardown, and report it to the caller.
  Status result = planner.SubmitSync(vcpu);
  if (result.ok()) {
    result = backing_->Flush(vcpu);
  }

  // Deferrals parked for this region can never be elided once it is gone
  // (the region id dies with the mapping): fold them into the final batch.
  runtime_->tlb().DrainDeferredRegion(vma_.mapping_id, &vpns);
  runtime_->ShootdownPages(vcpu, vpns);
  int core = vcpu.core();
  for (FrameId frame : frames) {
    cache.FreeFrame(core, frame);
  }
  if (transparent_base_ != nullptr) {
    TrapDriver::ReleaseRange(transparent_base_, vma_.page_count * kPageSize);
    transparent_base_ = nullptr;
  }
  return result;
}

void AquilaMap::NoteWritebackResult(const Status& status) {
  if (status.ok()) {
    writeback_failures_.store(0, std::memory_order_relaxed);
    return;
  }
  runtime_->fault_stats().writeback_errors.fetch_add(1, std::memory_order_relaxed);
  uint32_t failures = writeback_failures_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures >= runtime_->options().writeback_failure_limit) {
    degraded_.store(true, std::memory_order_release);
  }
}

Status AquilaMap::RearmWriteback() {
  DeviceHealth& health = backing_->device()->health();
  if (health.enabled() && health.state() == DeviceHealth::State::kFailed) {
    return Status::FailedPrecondition("backing device health is failed; heal it first");
  }
  writeback_failures_.store(0, std::memory_order_relaxed);
  degraded_.store(false, std::memory_order_release);
  return Status::Ok();
}

void AquilaMap::RestoreDirtyFrame(Vcpu& vcpu, FrameId frame, uint64_t sort_key,
                                  bool reinsert_mapping) {
  // The frame was claimed for writeback (PTE removed, dirty bit cleared) but
  // its data never reached the device. Dropping it would be silent
  // corruption, so put it back: the next access takes a minor fault and the
  // next writeback retries. The synchronous path removed the cache mapping
  // when claiming and re-inserts it here; the async path kept it.
  PageCache& cache = runtime_->cache();
  Frame& f = cache.frame(frame);
  if (reinsert_mapping) {
    AQUILA_CHECK(cache.InsertMapping(f.key.load(std::memory_order_relaxed), frame));
  }
  cache.MarkDirty(vcpu.core(), frame, sort_key);
  f.referenced.store(1, std::memory_order_relaxed);
  f.state.store(FrameState::kResident, std::memory_order_release);
}

Status AquilaMap::HandleTrapFault(uint64_t vaddr, bool write) {
  uint64_t base = reinterpret_cast<uint64_t>(transparent_base_);
  if (transparent_base_ == nullptr || vaddr < base || vaddr >= base + length_) {
    return Status::InvalidArgument("fault outside this mapping");
  }
  if (write && (vma_.prot & kProtWrite) == 0) {
    return Status::FailedPrecondition("real write fault on read-only mapping");
  }
  uint64_t offset = vaddr - base;
  StatusOr<PageRef> ref = AccessPage(offset, write);
  if (!ref.ok()) {
    return ref.status();
  }
  UnlockPage(vma_.start_page + (offset >> kPageShift));
  return Status::Ok();
}

StatusOr<AquilaMap::PageRef> AquilaMap::AccessPage(uint64_t offset, bool write,
                                                   CoopContext* coop) {
  if (offset >= length_) {
    return Status::InvalidArgument("access beyond mapping");
  }
  if (write && (vma_.prot & kProtWrite) == 0) {
    return Status::FailedPrecondition("write to read-only mapping");
  }
  if (write && degraded_.load(std::memory_order_acquire)) {
    // Repeated writeback failures demoted the mapping: accepting more dirty
    // data would only grow the set of pages that can never be cleaned.
    return Status::IoError("mapping degraded to read-only after writeback failures");
  }
  Vcpu& vcpu = ThisVcpu();
  uint64_t page = vma_.start_page + (offset >> kPageShift);
  uint64_t vaddr = page << kPageShift;

  // Hardware translation attempt (statistical TLB).
  TlbSet::LookupResult tlb = runtime_->tlb().Lookup(vcpu.core(), page);

  Vma* vma = runtime_->vma_tree().LockEntry(page);
  if (vma == nullptr) {
    return Status::FailedPrecondition("address no longer mapped");
  }
  AQUILA_DCHECK(vma == &vma_);

  uint64_t pte = runtime_->page_table().Lookup(vaddr);
  PageRef ref;
  FrameId frame;
  if (Pte::Present(pte) && (!write || Pte::Writable(pte))) {
    // Cache hit: translation exists; no software on the real machine. We
    // charge only the hardware walk when the TLB missed.
    frame = static_cast<FrameId>(Pte::Gpa(pte) >> kPageShift);
    if (!tlb.hit || (write && !tlb.writable)) {
      vcpu.clock().Charge(CostCategory::kPageTable, GlobalCostModel().hardware_walk);
      uint64_t epoch = runtime_->tlb().Insert(vcpu.core(), page, Pte::Writable(pte), frame);
      // Publish under the entry lock: evictors capture the mask only after
      // their claim CAS, which the same lock orders against this insert.
      NoteTlbInsert(runtime_->cache().frame(frame), vcpu.core(), epoch);
    }
    ref.faulted = false;
  } else {
    StatusOr<FrameId> faulted = HandleFault(vcpu, vaddr, write, coop);
    if (coop != nullptr && coop->parked) {
      // The fault parked as a continuation; the scheduler re-runs the whole
      // access on wake. Nothing to hand out yet.
      UnlockPage(page);
      return PageRef{};
    }
    if (!faulted.ok()) {
      UnlockPage(page);
      return faulted.status();
    }
    frame = *faulted;
    uint64_t epoch = runtime_->tlb().Insert(vcpu.core(), page, write, frame);
    NoteTlbInsert(runtime_->cache().frame(frame), vcpu.core(), epoch);
    ref.faulted = true;
    if (spans_ != nullptr) {
      uint64_t file_page = offset >> kPageShift;
      FaultAround(vcpu, file_page);
      uint64_t span = SpanOf(file_page);
      if (PromotionEligible(span)) {
        // The wrapper promotes after UnlockPage — see PageRef::promote_span.
        ref.promote_span = span;
      }
    }
  }
  Frame& f = runtime_->cache().frame(frame);
  f.referenced.store(1, std::memory_order_relaxed);
  ref.data = runtime_->cache().FrameData(vcpu, frame);
  return ref;
}

StatusOr<FrameId> AquilaMap::HandleFault(Vcpu& vcpu, uint64_t vaddr, bool write,
                                         CoopContext* coop) {
  // Entry lock held by the caller. This is operation ①: an exception taken
  // and handled entirely in non-root ring 0 — no protection-domain switch.
  runtime_->fabric().Absorb(vcpu.clock(), vcpu.core());
  vcpu.ChargeRing0Exception();
  AQUILA_TELEMETRY_ONLY(const uint64_t fault_start = vcpu.clock().Now());
  // Root of this request's span tree (no-op unless sampled). Opened after
  // the trap charge so the root's wall time is the handler body — the part
  // the child phases below decompose. Classified major/minor/upgrade at the
  // exit that resolves it.
  telemetry::RequestSpan req_span(vcpu.clock(), telemetry::SpanOp::kFaultMajor, vaddr);
  if (coop != nullptr && coop->resumed) {
    // Marker child: this handler run is the resumption of a parked request
    // (the park itself was marked in the previous run's tree).
    telemetry::ChildSpan resume_span(vcpu.clock(), telemetry::SpanPhase::kResume, vaddr);
  }

  PageCache& cache = runtime_->cache();
  uint64_t page = vaddr >> kPageShift;
  uint64_t file_page = page - vma_.start_page;
  uint64_t key = MakeKey(vma_.mapping_id, file_page);

  uint64_t pte = runtime_->page_table().Lookup(vaddr);
  if (spans_ != nullptr && Pte::Present(pte) && Pte::Huge(pte)) {
    // Write fault on a 2 MB span (huge mappings are never writable — reads
    // hit in AccessPage and never reach here): dirty divergence. Split back
    // to 4K and re-read the now-4K PTE; the upgrade below dirties just this
    // page while its 511 neighbors stay clean.
    DemoteSpanForPage(vcpu, file_page);
    pte = runtime_->page_table().Lookup(vaddr);
  }
  if (Pte::Present(pte)) {
    // Write fault on a read-only mapping: the dirty-tracking fault (§3.2).
    AQUILA_DCHECK(write && !Pte::Writable(pte));
    req_span.set_op(telemetry::SpanOp::kFaultUpgrade);
    // Span before measure: the measure's charge lands at ITS destructor,
    // which must run inside the span's clock window.
    telemetry::ChildSpan dirty_span(vcpu.clock(), telemetry::SpanPhase::kDirtyTrack, vaddr);
    ScopedMeasure measure(vcpu.clock(), CostCategory::kDirtyTracking);
    FrameId frame = static_cast<FrameId>(Pte::Gpa(pte) >> kPageShift);
    // The frame may already be dirty with only its PTE write-protected
    // (mprotect downgrade); re-inserting it would corrupt the dirty tree.
    if (cache.frame(frame).dirty.load(std::memory_order_relaxed) == 0) {
      cache.MarkDirty(vcpu.core(), frame, SortKey(file_page * kPageSize));
    }
    runtime_->page_table().Walk(vaddr)->fetch_or(Pte::kWritable | Pte::kDirty,
                                                 std::memory_order_acq_rel);
    if (transparent_base_ != nullptr) {
      TrapDriver::UpgradeRealMapping(vaddr);
    }
    runtime_->fault_stats().write_upgrades.fetch_add(1, std::memory_order_relaxed);
    AQUILA_TELEMETRY_ONLY(telemetry::RecordSpanSince(GetFaultMetrics().fault_upgrade,
                                                     telemetry::TraceEventType::kFaultUpgrade,
                                                     vcpu.clock(), fault_start, vaddr));
    return frame;
  }

  FrameId frame;
  // Minor-fault path: the page may already be in the cache (read-ahead or
  // a prior mapping). Frames without a translation (read-ahead) can be
  // evicted concurrently — an evictor for a *mapped* page would need our
  // entry lock, but a read-ahead frame is evictable lock-free — so the frame
  // must be PINNED before we touch it: claim kResident -> kFilling (which
  // makes every evictor's claim CAS fail), re-validate the key under
  // ownership, and only then install the translation and republish. Checking
  // state/key and then writing unpinned would let an evictor free the frame
  // under our feet and leave the PTE pointing at a recycled frame. The wait
  // itself stays outside the measured scopes (it is host-scheduling noise,
  // not modeled work).
  {
    SpinBackoff backoff;
    while (true) {
      bool found;
      {
        telemetry::ChildSpan lookup_span(vcpu.clock(), telemetry::SpanPhase::kCacheLookup);
        ScopedMeasure measure(vcpu.clock(), CostCategory::kCacheMgmt);
        found = cache.Lookup(key, &frame);
      }
      if (!found) {
        if (engine_ != nullptr) {
          // An async read-ahead fill for this page may be in flight —
          // invisible until its completion publishes it into the hash. Wait
          // it out instead of issuing a duplicate device read, then re-check:
          // the fill may also have been published by a concurrent harvester
          // between our lookup and the engine lock.
          if (coop != nullptr && coop->sched != nullptr &&
              engine_->HasPendingFill(key)) {
            // Park point (a): someone else's fill is in flight for this page.
            // Reserve the parked-table entry FIRST, then re-check — the
            // completion's Wake runs under the engine lock we re-take in
            // HasPendingFill, so a completion that raced the reservation is
            // visible to the re-check and we cancel instead of sleeping on a
            // wake that already happened.
            uint64_t token = coop->sched->PrePark(key, kInvalidFrame);
            if (token != 0) {
              if (engine_->HasPendingFill(key)) {
                telemetry::ChildSpan park_span(vcpu.clock(),
                                               telemetry::SpanPhase::kPark, vaddr);
                coop->sched->CommitPark(token);
                coop->token = token;
                coop->parked = true;
                return kInvalidFrame;
              }
              coop->sched->CancelPark(token);
              continue;  // published (or failed) already; re-run the lookup
            }
            // Parked table full: fall through to the blocking wait.
          }
          bool drained;
          {
            telemetry::ChildSpan wait_span(vcpu.clock(), telemetry::SpanPhase::kQueueWait);
            drained = engine_->AwaitFill(vcpu, key);
          }
          bool hit;
          {
            telemetry::ChildSpan lookup_span(vcpu.clock(), telemetry::SpanPhase::kCacheLookup);
            ScopedMeasure measure(vcpu.clock(), CostCategory::kCacheMgmt);
            hit = cache.Lookup(key, &frame);
          }
          if (hit) {
            if (drained && advice_.load(std::memory_order_relaxed) == Advice::kSequential) {
              // Landing on a page we had to wait for means the stream caught
              // up with the prefetcher: re-arm the window now (the minor-
              // fault path below won't), like the kernel's readahead marker.
              (void)ReadAhead(vcpu, file_page);
            }
            continue;
          }
        }
        break;
      }
      Frame& f = cache.frame(frame);
      FrameState expected = FrameState::kResident;
      if (f.state.compare_exchange_strong(expected, FrameState::kFilling,
                                          std::memory_order_acq_rel)) {
        if (f.key.load(std::memory_order_relaxed) != key) {
          // Between the lookup and the pin the frame was evicted, freed, and
          // refilled for a different page (a refill for OUR key is impossible
          // — it would need the entry lock we hold). Unpin and retry: the
          // next lookup misses and takes the major-fault path.
          f.state.store(FrameState::kResident, std::memory_order_release);
          backoff.Pause();
          continue;
        }
        req_span.set_op(telemetry::SpanOp::kFaultMinor);
        // This install may map `page` onto a frame a pending deferral does
        // not cover (e.g. a readahead frame re-reading a previously evicted
        // file page): execute that deferral before the translation goes
        // live. One relaxed load when the deferred table is empty.
        runtime_->ResolveDeferredForVpn(vcpu, page, frame);
        telemetry::ChildSpan install_span(vcpu.clock(), telemetry::SpanPhase::kFillCopy, vaddr);
        ScopedMeasure measure(vcpu.clock(), CostCategory::kCacheMgmt);
        f.vaddr.store(vaddr, std::memory_order_relaxed);
        uint64_t flags =
            write ? (Pte::kWritable | Pte::kDirty | Pte::kAccessed) : Pte::kAccessed;
        AQUILA_CHECK(runtime_->page_table().Install(
            vaddr, static_cast<uint64_t>(frame) << kPageShift, flags));
        NotePteInstalled(file_page);
        if (write && f.dirty.load(std::memory_order_relaxed) == 0) {
          cache.MarkDirty(vcpu.core(), frame, SortKey(file_page * kPageSize));
        }
        if (transparent_base_ != nullptr) {
          TrapDriver::InstallRealMapping(runtime_, vaddr, f.gpa, write);
        }
        f.state.store(FrameState::kResident, std::memory_order_release);
        runtime_->fault_stats().minor_faults.fetch_add(1, std::memory_order_relaxed);
        AQUILA_TELEMETRY_ONLY(telemetry::RecordSpanSince(
            GetFaultMetrics().fault_minor, telemetry::TraceEventType::kFaultMinor, vcpu.clock(),
            fault_start, vaddr));
        return frame;
      }
      if (engine_ != nullptr && expected == FrameState::kWritingBack) {
        if (coop != nullptr && coop->sched != nullptr) {
          // Park point (b): an async writeback owns this frame; its
          // completion Wakes every parked entry for the key (non-terminal).
          // Reserve first, then re-read the state — a completion that landed
          // before the reservation left the frame kResident/kFree, in which
          // case we cancel and retry the pin instead of parking forever.
          uint64_t token = coop->sched->PrePark(key, kInvalidFrame);
          if (token != 0) {
            if (f.state.load(std::memory_order_acquire) == FrameState::kWritingBack) {
              telemetry::ChildSpan park_span(vcpu.clock(),
                                             telemetry::SpanPhase::kPark, vaddr);
              coop->sched->CommitPark(token);
              coop->token = token;
              coop->parked = true;
              return kInvalidFrame;
            }
            coop->sched->CancelPark(token);
            backoff.Pause();
            continue;
          }
          // Parked table full: fall through to the blocking wait.
        }
        // Async writeback in flight on this page: reap completions, advancing
        // simulated time when nothing is ready yet. The frame either frees —
        // the retry then refills the now-durable page from the device — or
        // returns resident on a write failure, where the pin CAS succeeds.
        telemetry::ChildSpan wait_span(vcpu.clock(), telemetry::SpanPhase::kQueueWait);
        (void)engine_->WaitOne(vcpu);
      }
      backoff.Pause();  // eviction, fill, or msync in flight; re-validate
    }
  }

  // Major fault: allocate a frame, evicting when the cache is full (§3.2:
  // batch of 512 — written back synchronously, or submitted to the device
  // queue with completions reaped as fault handling continues).
  ReuseStamp stamp;
  while (true) {
    {
      telemetry::ChildSpan alloc_span(vcpu.clock(), telemetry::SpanPhase::kCacheLookup);
      ScopedMeasure measure(vcpu.clock(), CostCategory::kCacheMgmt);
      frame = cache.AllocFrame(vcpu, vcpu.core(), &stamp);
    }
    if (frame != kInvalidFrame) {
      break;
    }
    // Ready async completions hand frames back without any device waiting.
    {
      telemetry::ChildSpan harvest_span(vcpu.clock(), telemetry::SpanPhase::kQueueWait);
      if (runtime_->HarvestAsyncWritebacks(vcpu) > 0) {
        continue;
      }
    }
    StatusOr<size_t> evicted = EvictBatch(vcpu);
    if (!evicted.ok()) {
      return evicted.status();
    }
    if (*evicted == 0) {
      telemetry::ChildSpan harvest_span(vcpu.clock(), telemetry::SpanPhase::kQueueWait);
      if (runtime_->HarvestAsyncWritebacks(vcpu, HarvestMode::kWaitOne) == 0) {
        CpuRelax();  // every frame busy; another thread is making progress
      }
    }
  }

  // Resolve the frame's last-owner stamp before filling: same-owner reuse
  // elides the deferred shootdown outright (the stale translations point at
  // this frame, about to hold the same bytes again); any other pending
  // deferral — the stamp's or this page's — executes first (DESIGN.md §10).
  // This is the only elision-eligible allocation site, which keeps the
  // failure backstop below a single call. A cooperative demand fill forgoes
  // elision: its fill completes in CompleteLocked, where the failure
  // backstop below cannot run (same reason read-ahead fills never elide).
  const bool coop_fill = coop != nullptr && coop->sched != nullptr && engine_ != nullptr;
  const bool elided = runtime_->ResolveReuseStamp(vcpu, stamp, frame, page,
                                                  vma_.mapping_id,
                                                  /*allow_elide=*/!coop_fill);

  if (coop_fill) {
    // Park point (c): submit the device read asynchronously and park as this
    // fill's OWNER — the completion publishes the page (counting the major
    // fault) and delivers its status terminally to us. The frame stays
    // kFilling across the park, exactly like a read-ahead fill: invisible to
    // evictors, owned by the pipeline.
    uint64_t token = coop->sched->PrePark(key, frame);
    if (token != 0) {
      PageCache& pc = runtime_->cache();
      Frame& f = pc.frame(frame);
      f.key.store(key, std::memory_order_relaxed);
      f.vaddr.store(0, std::memory_order_relaxed);
      Status submit =
          engine_->SubmitFill(vcpu, frame, key, file_page * kPageSize, /*demand=*/true);
      if (submit.ok()) {
        telemetry::ChildSpan park_span(vcpu.clock(), telemetry::SpanPhase::kPark, vaddr);
        coop->sched->CommitPark(token);
        coop->token = token;
        coop->parked = true;
        coop->owner_park = true;
        if (advice_.load(std::memory_order_relaxed) == Advice::kSequential) {
          (void)ReadAhead(vcpu, file_page);
        }
        return kInvalidFrame;
      }
      // Submission machinery rejected the fill (not an I/O error): un-park
      // and fall through to the blocking path. We still own the frame in
      // kFilling, and elision was disabled above, so the synchronous
      // FillAndPublish below is safe.
      coop->sched->CancelPark(token);
    }
    // Parked table full (token == 0) or submission rejected: block instead.
  }

  Status fill = FillAndPublish(vcpu, frame, vaddr, key, write);
  if (!fill.ok()) {
    if (elided) {
      // The elision re-legitimized stale entries against this frame's old
      // identity; the fill failed, so that identity is gone — flush them
      // before the frame recycles.
      runtime_->ExecuteElidedShootdown(vcpu, page, vma_.mapping_id, frame);
    }
    cache.FreeFrame(vcpu.core(), frame);
    return fill;
  }
  runtime_->fault_stats().major_faults.fetch_add(1, std::memory_order_relaxed);

  if (advice_.load(std::memory_order_relaxed) == Advice::kSequential) {
    (void)ReadAhead(vcpu, file_page);  // best effort: a failed prefetch is not a fault error
  }
  AQUILA_TELEMETRY_ONLY(telemetry::RecordSpanSince(GetFaultMetrics().fault_major,
                                                   telemetry::TraceEventType::kFaultMajor,
                                                   vcpu.clock(), fault_start, vaddr));
  return frame;
}

Status AquilaMap::FillAndPublish(Vcpu& vcpu, FrameId frame, uint64_t vaddr, uint64_t key,
                                 bool write) {
  PageCache& cache = runtime_->cache();
  Frame& f = cache.frame(frame);
  uint64_t file_page = FilePageOfKey(key);
  uint64_t file_offset = file_page * kPageSize;

  uint8_t* data = cache.FrameData(vcpu, frame);
  uint64_t read_len = std::min<uint64_t>(kPageSize, backing_->size_bytes() - file_offset);
  Status status;
  {
    telemetry::ChildSpan device_span(vcpu.clock(), telemetry::SpanPhase::kDevice, file_offset);
    status = backing_->ReadRange(vcpu, file_offset, std::span(data, read_len));
  }
  if (!status.ok()) {
    return status;
  }
  if (read_len < kPageSize) {
    std::memset(data + read_len, 0, kPageSize - read_len);
  }

  telemetry::ChildSpan publish_span(vcpu.clock(), telemetry::SpanPhase::kFillCopy, vaddr);
  ScopedMeasure measure(vcpu.clock(), CostCategory::kCacheMgmt);
  // Identity writes happen while the frame is kFilling (owned by us); the
  // release store of kResident below is the publication point that makes
  // them visible to claimants.
  f.key.store(key, std::memory_order_relaxed);
  f.vaddr.store(vaddr, std::memory_order_relaxed);
  uint64_t flags = write ? (Pte::kWritable | Pte::kDirty | Pte::kAccessed) : Pte::kAccessed;
  AQUILA_CHECK(
      runtime_->page_table().Install(vaddr, static_cast<uint64_t>(frame) << kPageShift, flags));
  NotePteInstalled(file_page);
  AQUILA_CHECK(cache.InsertMapping(key, frame));
  if (write) {
    cache.MarkDirty(vcpu.core(), frame, SortKey(file_offset));
  }
  if (transparent_base_ != nullptr) {
    TrapDriver::InstallRealMapping(runtime_, vaddr, f.gpa, write);
  }
  f.state.store(FrameState::kResident, std::memory_order_release);
  return Status::Ok();
}

Status AquilaMap::ReadAhead(Vcpu& vcpu, uint64_t file_page) {
  // A degraded/failed device sheds speculative prefetch first: demand reads
  // keep their queue slots and the sick medium sees less traffic.
  if (!backing_->device()->health().allows_readahead()) {
    return Status::Ok();
  }
  telemetry::ChildSpan readahead_span(vcpu.clock(), telemetry::SpanPhase::kReadahead, file_page);
  PageCache& cache = runtime_->cache();
  uint32_t window = runtime_->options().readahead_pages;
  std::vector<uint64_t> offsets;
  std::vector<uint8_t*> buffers;
  std::vector<FrameId> frames;
  std::vector<uint64_t> pages;

  uint64_t first = file_page + 1;
  const uint64_t last = file_page + window;
  const bool track_stream =
      engine_ != nullptr && advice_.load(std::memory_order_relaxed) == Advice::kSequential;
  if (track_stream) {
    // Async fills are invisible to the hash until published; start past the
    // high-water mark so a re-armed window extends the stream instead of
    // resubmitting fills still in flight.
    uint64_t mark = next_readahead_.load(std::memory_order_relaxed);
    if (first + window < mark) {
      // Faulting more than a window below the mark means a new stream over
      // ground already covered (e.g. a second scan of the file): retreat the
      // mark so the window re-opens here. A monotonic mark would silently
      // disable readahead at every offset below a previous scan's end. A
      // duplicate fill racing a straggler from the old stream is benign —
      // the losing completion is discarded at publication.
      next_readahead_.compare_exchange_strong(mark, first, std::memory_order_relaxed);
    } else {
      first = std::max(first, mark);
      if (first > last) {
        return Status::Ok();
      }
    }
  }
  uint64_t advance_to = last + 1;
  for (uint64_t next_file_page = first; next_file_page <= last; next_file_page++) {
    if (next_file_page >= vma_.page_count ||
        (next_file_page + 1) * kPageSize > backing_->size_bytes()) {
      break;
    }
    uint64_t page = vma_.start_page + next_file_page;
    Vma* vma;
    if (!runtime_->vma_tree().TryLockEntry(page, &vma)) {
      continue;
    }
    uint64_t key = MakeKey(vma_.mapping_id, next_file_page);
    FrameId existing;
    if (cache.Lookup(key, &existing)) {
      UnlockPage(page);
      continue;
    }
    ReuseStamp stamp;
    FrameId frame = cache.AllocFrame(vcpu, vcpu.core(), &stamp);
    if (frame == kInvalidFrame) {
      UnlockPage(page);
      advance_to = next_file_page;  // not covered; eligible for the next window
      break;                        // never evict for read-ahead
    }
    // Read-ahead never elides (allow_elide=false): its fills can fail on
    // paths that free the frame asynchronously, where the elide-failure
    // backstop could not run. Any deferral the stamp or target page carries
    // is executed instead.
    (void)runtime_->ResolveReuseStamp(vcpu, stamp, frame, page, vma_.mapping_id,
                                      /*allow_elide=*/false);
    Frame& f = cache.frame(frame);
    f.key.store(key, std::memory_order_relaxed);
    // No translation yet: the actual access takes a minor fault. vaddr == 0
    // is also what marks the frame evictable without the entry lock.
    f.vaddr.store(0, std::memory_order_relaxed);
    if (engine_ != nullptr) {
      // Async fill: the frame stays kFilling — invisible to evictors and to
      // Lookup — until its completion publishes it into the hash. The fault
      // that wanted the page either finds it published (minor fault) or
      // waits out the in-flight fill (AwaitFill) rather than duplicating the
      // read. Submitting under the page's entry lock is what makes that
      // handshake race-free.
      Status status = engine_->SubmitFill(vcpu, frame, key, next_file_page * kPageSize);
      UnlockPage(page);
      if (!status.ok()) {
        cache.FreeFrame(vcpu.core(), frame);
        return status;
      }
      continue;
    }
    offsets.push_back(next_file_page * kPageSize);
    buffers.push_back(cache.FrameData(vcpu, frame));
    frames.push_back(frame);
    pages.push_back(page);
  }
  if (track_stream) {
    uint64_t seen = next_readahead_.load(std::memory_order_relaxed);
    while (seen < advance_to &&
           !next_readahead_.compare_exchange_weak(seen, advance_to,
                                                  std::memory_order_relaxed)) {
    }
  }
  if (frames.empty()) {
    return Status::Ok();
  }

  Status status = backing_->ReadPages(vcpu, offsets, buffers, kPageSize);
  for (size_t i = 0; i < frames.size(); i++) {
    Frame& f = cache.frame(frames[i]);
    if (status.ok()) {
      AQUILA_CHECK(cache.InsertMapping(f.key.load(std::memory_order_relaxed), frames[i]));
      f.state.store(FrameState::kResident, std::memory_order_release);
    } else {
      cache.FreeFrame(vcpu.core(), frames[i]);
    }
    UnlockPage(pages[i]);
  }
  if (status.ok()) {
    runtime_->fault_stats().readahead_pages.fetch_add(frames.size(),
                                                      std::memory_order_relaxed);
  }
  return status;
}

StatusOr<size_t> AquilaMap::EvictBatch(Vcpu& vcpu) {
  PageCache& cache = runtime_->cache();
  FaultStats& stats = runtime_->fault_stats();
  stats.evict_batches.fetch_add(1, std::memory_order_relaxed);
  AQUILA_TELEMETRY_ONLY(const uint64_t evict_start = vcpu.clock().Now());
  // One child for the whole batch; writeback/shootdown below nest under it.
  telemetry::ChildSpan evict_span(vcpu.clock(), telemetry::SpanPhase::kEvict);
  const bool async = runtime_->options().async_writeback;

  std::vector<FrameId> victims(cache.eviction_batch());
  size_t n;
  {
    ScopedMeasure measure(vcpu.clock(), CostCategory::kCacheMgmt);
    n = cache.SelectVictims(victims.size(), victims.data());
  }
  if (n == 0) {
    return size_t{0};
  }

  WritebackPlanner planner;
  std::vector<uint64_t> locked_dirty_pages;
  std::vector<PageShootdown> vpns;
  std::vector<FrameId> to_free;
  vpns.reserve(n);
  to_free.reserve(n);

  {
    ScopedMeasure measure(vcpu.clock(), CostCategory::kCacheMgmt);
    for (size_t i = 0; i < n; i++) {
      FrameId frame = victims[i];
      Frame& f = cache.frame(frame);
      // The claim CAS in SelectVictims (acquire) synchronizes with the
      // publisher's kResident release store, so the identity fields read
      // below are the published values; we own them until the frame is
      // freed or republished.
      uint64_t vaddr = f.vaddr.load(std::memory_order_relaxed);
      uint64_t fkey = f.key.load(std::memory_order_relaxed);
      uint64_t page = vaddr >> kPageShift;
      Vma* vma;
      if (vaddr == 0 || !runtime_->vma_tree().TryLockEntry(page, &vma)) {
        // Read-ahead frame with no translation yet, or a fault in flight on
        // that page: give it a second chance.
        if (vaddr == 0) {
          // Read-ahead page: evictable without a translation or a lock.
          cache.RemoveMapping(fkey);
          to_free.push_back(frame);
          continue;
        }
        f.referenced.store(1, std::memory_order_relaxed);
        f.state.store(FrameState::kResident, std::memory_order_release);
        continue;
      }
      auto* owner = static_cast<AquilaMap*>(vma->backing);
      if (owner->spans_ != nullptr) {
        // Demote-before-sweep: Remove() refuses to descend through a 2 MB
        // leaf, so evicting a huge-covered page without splitting first
        // would free the frame while its translation stays live.
        owner->DemoteSpanForPage(vcpu, page - owner->vma_.start_page);
      }
      uint64_t old_pte = runtime_->page_table().Remove(vaddr);
      if (owner->spans_ != nullptr && Pte::Present(old_pte)) {
        owner->NotePteRemoved(page - owner->vma_.start_page);
      }
      if (owner->transparent_base_ != nullptr) {
        TrapDriver::RemoveRealMapping(vaddr);
      }
      // Unified capture rule (CaptureShootdownPage): frame claimed
      // (kEvicting) and entry lock held, PTE removed above — after this
      // point a completion or FreeFrame may recycle the frame, so the
      // routing state must travel with the batch (or the deferral).
      PageShootdown captured = CaptureShootdownPage(f, page);
      if (f.dirty.load(std::memory_order_relaxed) != 0) {
        vpns.push_back(captured);
        cache.ClearDirty(frame);
        uint64_t file_offset = FilePageOfKey(fkey) * kPageSize;
        planner.Add(WritebackItem{f.dirty_item.sort_key, file_offset,
                                  cache.FrameData(vcpu, frame), owner->backing_, frame,
                                  owner});
        if (async) {
          // Async claim: the cache mapping stays so a faulter finds the frame
          // and waits out kWritingBack instead of re-reading a page the
          // device has not acknowledged. The entry lock drops now — the
          // state alone guards the frame until its completion reaps.
          f.state.store(FrameState::kWritingBack, std::memory_order_release);
          UnlockPage(page);
        } else {
          cache.RemoveMapping(fkey);
          locked_dirty_pages.push_back(page);  // stays locked until written
        }
      } else {
        // Clean page: stays on the batched shootdown even under kReuseElide.
        // Bulk eviction recycles frames across owners almost always once
        // several cores churn, so deferring here trades the batch clamp
        // (~tlb_full_flush amortized over the whole batch) for one retail
        // invalidate/IPI per recycled frame — measured as a net loss beyond
        // a few cores. The deferral is scoped to Advise(kDontNeed), where a
        // discard-then-retouch by the same owner is the expected pattern
        // (DESIGN.md §10).
        cache.RemoveMapping(fkey);
        vpns.push_back(captured);
        UnlockPage(page);
        to_free.push_back(frame);
      }
    }
  }

  if (!planner.empty()) {
    telemetry::ChildSpan wb_span(vcpu.clock(), telemetry::SpanPhase::kWriteback,
                                 planner.size());
    if (async) {
      // Submit the offset-sorted batch: the device works while fault
      // handling continues; completions reap on later faults (or in
      // HarvestAsyncWritebacks when allocation stalls). A submission-
      // machinery rejection is not a fault error: SubmitAsync already
      // restored every rejected frame dirty-in-place and charged its owner,
      // so the round just makes less progress — and the shootdown plus
      // clean-frame release below must still run, because every victim's
      // PTE (clean or dirty, submitted or restored) is already gone.
      (void)planner.SubmitAsync(vcpu);
    } else {
      Status status = planner.SubmitSync(vcpu);
      NoteWritebackResult(status);
      if (status.ok()) {
        stats.writeback_pages.fetch_add(planner.size(), std::memory_order_relaxed);
        for (const WritebackItem& item : planner.items()) {
          to_free.push_back(item.frame);
        }
      } else {
        // The device rejected the batch even after its retry budget. The
        // victims return to the cache dirty; eviction makes less progress
        // this round and the fault path may retry with other victims.
        // (Degradation is charged to the mapping driving the eviction, like
        // reclaim-context EIO on Linux.)
        for (const WritebackItem& item : planner.items()) {
          RestoreDirtyFrame(vcpu, item.frame, item.sort_key, /*reinsert_mapping=*/true);
        }
      }
      for (uint64_t page : locked_dirty_pages) {
        UnlockPage(page);
      }
    }
  }

  // One batched shootdown for the whole eviction (§4.1); the masked path
  // splits it into per-victim-core coalesced IPIs and elides cores that
  // never mapped any page of the batch.
  runtime_->ShootdownPages(vcpu, vpns);

  int core = vcpu.core();
  for (FrameId frame : to_free) {
    cache.FreeFrame(core, frame);
  }
  stats.evicted_pages.fetch_add(to_free.size(), std::memory_order_relaxed);
  evict_span.set_arg(to_free.size());
  AQUILA_TELEMETRY_ONLY(telemetry::RecordSpanSince(GetFaultMetrics().evict_batch,
                                                   telemetry::TraceEventType::kEvictBatch,
                                                   vcpu.clock(), evict_start, to_free.size()));
  return to_free.size();
}

Status AquilaMap::Read(uint64_t offset, std::span<uint8_t> dst) {
  if (offset + dst.size() > length_) {
    return Status::InvalidArgument("read beyond mapping");
  }
  uint64_t done = 0;
  while (done < dst.size()) {
    uint64_t in_page = (offset + done) % kPageSize;
    uint64_t run = std::min<uint64_t>(dst.size() - done, kPageSize - in_page);
    StatusOr<PageRef> ref = AccessPage(offset + done, /*write=*/false);
    if (!ref.ok()) {
      return ref.status();
    }
    std::memcpy(dst.data() + done, ref->data + in_page, run);
    UnlockPage(vma_.start_page + ((offset + done) >> kPageShift));
    if (ref->promote_span != kNoSpan) {
      MaybePromote(ThisVcpu(), ref->promote_span);
    }
    done += run;
  }
  return Status::Ok();
}

Status AquilaMap::Write(uint64_t offset, std::span<const uint8_t> src) {
  if (offset + src.size() > length_) {
    return Status::InvalidArgument("write beyond mapping");
  }
  uint64_t done = 0;
  while (done < src.size()) {
    uint64_t in_page = (offset + done) % kPageSize;
    uint64_t run = std::min<uint64_t>(src.size() - done, kPageSize - in_page);
    StatusOr<PageRef> ref = AccessPage(offset + done, /*write=*/true);
    if (!ref.ok()) {
      return ref.status();
    }
    std::memcpy(ref->data + in_page, src.data() + done, run);
    UnlockPage(vma_.start_page + ((offset + done) >> kPageShift));
    if (ref->promote_span != kNoSpan) {
      MaybePromote(ThisVcpu(), ref->promote_span);
    }
    done += run;
  }
  return Status::Ok();
}

AccessResult AquilaMap::TouchRead(uint64_t offset) {
  StatusOr<PageRef> ref = AccessPage(offset, /*write=*/false);
  if (!ref.ok()) {
    return AccessResult{/*faulted=*/false, ref.status()};
  }
  // One load from the page (the microbenchmark's access).
  volatile uint8_t sink = ref->data[offset % kPageSize];
  (void)sink;
  bool faulted = ref->faulted;
  UnlockPage(vma_.start_page + (offset >> kPageShift));
  if (ref->promote_span != kNoSpan) {
    MaybePromote(ThisVcpu(), ref->promote_span);
  }
  return AccessResult{faulted, Status::Ok()};
}

AccessResult AquilaMap::TouchWrite(uint64_t offset) {
  StatusOr<PageRef> ref = AccessPage(offset, /*write=*/true);
  if (!ref.ok()) {
    return AccessResult{/*faulted=*/false, ref.status()};
  }
  ref->data[offset % kPageSize]++;
  bool faulted = ref->faulted;
  UnlockPage(vma_.start_page + (offset >> kPageShift));
  if (ref->promote_span != kNoSpan) {
    MaybePromote(ThisVcpu(), ref->promote_span);
  }
  return AccessResult{faulted, Status::Ok()};
}

void AquilaMap::CoopStep(Vcpu& vcpu, CoreScheduler* sched, CoreScheduler::Task* task) {
  bool resumed = false;
  if (task->park_token != 0) {
    Status wake;
    if (!sched->ConsumeIfReady(task->park_token, &wake)) {
      return;  // still parked; its completion has not arrived
    }
    task->park_token = 0;
    const bool owner = task->owner_park;
    task->owner_park = false;
    if (owner && !wake.ok()) {
      // Our own demand fill failed (device EIO, watchdog kUnavailable /
      // kDeadlineExceeded): terminal. CompleteLocked already freed the frame.
      task->completion = MmioCompletion{task->request.user_tag, wake, /*faulted=*/true};
      task->done = true;
      return;
    }
    resumed = true;  // re-run the access from scratch; parks again if needed
  }

  const MmioRequest& req = task->request;
  if (req.kind == MmioRequest::Kind::kPrefetch) {
    uint64_t len = req.data.empty() ? kPageSize : req.data.size();
    Status status = Advise(req.offset, len, Advice::kWillNeed);
    task->completion = MmioCompletion{req.user_tag, status, /*faulted=*/false};
    task->done = true;
    return;
  }
  if (!req.data.empty()) {
    // Bulk transfers run synchronously for now; only touch accesses park.
    Status status =
        req.kind == MmioRequest::Kind::kWrite
            ? Write(req.offset, std::span<const uint8_t>(req.data.data(), req.data.size()))
            : Read(req.offset, req.data);
    task->completion = MmioCompletion{req.user_tag, status, /*faulted=*/false};
    task->done = true;
    return;
  }

  CoopContext ctx;
  ctx.sched = sched;
  ctx.resumed = resumed;
  const bool write = req.kind == MmioRequest::Kind::kWrite;
  StatusOr<PageRef> ref = AccessPage(req.offset, write, &ctx);
  if (ctx.parked) {
    task->park_token = ctx.token;
    task->owner_park = ctx.owner_park;
    task->completion.faulted = true;  // parked at a fault-path wait point
    return;
  }
  if (!ref.ok()) {
    task->completion = MmioCompletion{req.user_tag, ref.status(), task->completion.faulted};
    task->done = true;
    return;
  }
  uint64_t in_page = req.offset % kPageSize;
  if (write) {
    ref->data[in_page]++;
  } else {
    volatile uint8_t sink = ref->data[in_page];
    (void)sink;
  }
  const bool faulted = ref->faulted || task->completion.faulted;
  UnlockPage(vma_.start_page + (req.offset >> kPageShift));
  if (ref->promote_span != kNoSpan) {
    MaybePromote(vcpu, ref->promote_span);
  }
  task->completion = MmioCompletion{req.user_tag, Status::Ok(), faulted};
  task->done = true;
}

Status AquilaMap::SubmitBatch(std::span<const MmioRequest> requests) {
  SchedRegistry* registry = runtime_->sched();
  if (registry == nullptr || engine_ == nullptr) {
    return MemoryMap::SubmitBatch(requests);  // synchronous fallback
  }
  CoreScheduler* sched = registry->ForCore(ThisVcpu().core());
  for (const MmioRequest& req : requests) {
    sched->Enqueue(this, req);
  }
  return Status::Ok();
}

size_t AquilaMap::Poll(std::span<MmioCompletion> out) {
  SchedRegistry* registry = runtime_->sched();
  if (registry == nullptr || engine_ == nullptr) {
    return MemoryMap::Poll(out);
  }
  if (out.empty()) {
    return 0;
  }
  Vcpu& vcpu = ThisVcpu();
  CoreScheduler* sched = registry->ForCore(vcpu.core());
  while (true) {
    (void)sched->RunReady(vcpu);
    size_t n = sched->PopCompleted(this, out);
    if (n > 0 || !sched->HasTasks(this)) {
      return n;
    }
    // Every remaining task is parked on a device completion: reap, advancing
    // simulated time when nothing is ready, then re-run the woken tasks.
    size_t freed;
    {
      telemetry::ChildSpan wait_span(vcpu.clock(), telemetry::SpanPhase::kQueueWait);
      freed = runtime_->HarvestAsyncWritebacks(vcpu, HarvestMode::kWaitOne);
    }
    if (freed == 0 && engine_->in_flight() == 0) {
      // Nothing in flight on this mapping yet tasks are still parked (e.g.
      // another thread's harvest consumed the completion between our
      // RunReady and this check). Re-running from scratch is always correct.
      sched->KickParked();
    }
  }
}

Status AquilaMap::Sync(uint64_t offset, uint64_t length) {
  if (offset + length > AlignUp(length_, kPageSize) || length == 0) {
    return Status::InvalidArgument("bad msync range");
  }
  Vcpu& vcpu = ThisVcpu();
  PageCache& cache = runtime_->cache();
  AQUILA_TELEMETRY_ONLY(const uint64_t msync_start = vcpu.clock().Now());
  telemetry::RequestSpan req_span(vcpu.clock(), telemetry::SpanOp::kMsync, offset);

  // msync promises durability, so the async pipeline must empty first: reap
  // every in-flight writeback of this mapping. Failures restore their pages
  // dirty, the collection below re-claims them, and the synchronous pass
  // surfaces the EIO.
  if (engine_ != nullptr) {
    telemetry::ChildSpan drain_span(vcpu.clock(), telemetry::SpanPhase::kQueueWait);
    (void)engine_->Drain(vcpu);
  }

  const uint64_t lo = vma_.mapping_id << 40;
  const uint64_t hi = lo | ((1ull << 40) - 1);
  const uint64_t first_page = offset >> kPageShift;
  const uint64_t last_page = (offset + length - 1) >> kPageShift;
  WritebackPlanner planner;
  std::vector<PageShootdown> vpns;
  std::vector<FrameId> claimed;
  std::vector<FrameId> collected;
  // Claim dirty frames of this mapping from the per-core trees.
  auto collect_and_claim = [&] {
    collected.clear();
    {
      ScopedMeasure measure(vcpu.clock(), CostCategory::kDirtyTracking);
      cache.CollectDirtyRange(lo, hi, &collected);
    }
    for (FrameId frame : collected) {
      Frame& f = cache.frame(frame);
      // Claim the frame BEFORE reading its identity: the unlinked dirty item
      // proves nothing about the frame itself, which a concurrent evictor may
      // have already claimed, written back, freed — and the freelist may have
      // recycled it for a different page. Classifying (or re-marking) on the
      // stale key would write the new page's data to the old page's device
      // offset. kFilling is transient (a fill or a minor-fault pin), so wait
      // it out; kEvicting/kFree/kOffline mean another owner took over the
      // writeback responsibility, so skip.
      bool owned = false;
      SpinBackoff backoff;
      while (true) {
        FrameState expected = FrameState::kResident;
        if (f.state.compare_exchange_strong(expected, FrameState::kEvicting,
                                            std::memory_order_acq_rel)) {
          owned = true;
          break;
        }
        if (expected != FrameState::kFilling) {
          break;
        }
        backoff.Pause();
      }
      if (!owned) {
        continue;
      }
      // Re-validate identity under ownership. A recycled frame that now
      // belongs to another mapping (or was cleaned) is not ours to sync.
      uint64_t fkey = f.key.load(std::memory_order_relaxed);
      uint64_t file_page = FilePageOfKey(fkey);
      if (f.dirty.load(std::memory_order_relaxed) == 0 ||
          fkey != MakeKey(vma_.mapping_id, file_page)) {
        f.state.store(FrameState::kResident, std::memory_order_release);
        continue;
      }
      if (file_page < first_page || file_page > last_page) {
        // Outside the msync range: keep it dirty. ClearDirty-then-MarkDirty
        // (rather than a bare insert) stays correct even when the frame was
        // recycled within this mapping and its item already re-linked.
        ScopedMeasure measure(vcpu.clock(), CostCategory::kDirtyTracking);
        cache.ClearDirty(frame);
        cache.MarkDirty(vcpu.core(), frame, SortKey(file_page * kPageSize));
        f.state.store(FrameState::kResident, std::memory_order_release);
        continue;
      }
      // ClearDirty (not a bare flag store) unlinks the item if a recycled
      // incarnation re-inserted it, keeping flag and tree consistent.
      cache.ClearDirty(frame);
      // Write-protect so future stores re-fault and re-mark dirty.
      uint64_t fvaddr = f.vaddr.load(std::memory_order_relaxed);
      std::atomic<uint64_t>* pte =
          fvaddr != 0 ? runtime_->page_table().WalkExisting(fvaddr) : nullptr;
      if (pte != nullptr) {
        pte->fetch_and(~(Pte::kWritable | Pte::kDirty), std::memory_order_acq_rel);
        if (transparent_base_ != nullptr &&
            Pte::Present(pte->load(std::memory_order_relaxed))) {
          TrapDriver::DowngradeRealMapping(fvaddr);
        }
      }
      if (fvaddr != 0) {
        // Unified capture rule (CaptureShootdownPage): frame claimed
        // (kEvicting), W bit cleared above. The mask is read but NOT
        // cleared: the page stays resident, and unclaimed hit-path readers
        // may be OR-ing bits in concurrently.
        vpns.push_back(CaptureShootdownPage(f, fvaddr >> kPageShift));
      }
      planner.Add(WritebackItem{SortKey(file_page * kPageSize), file_page * kPageSize,
                                cache.FrameData(vcpu, frame), backing_, frame, this});
      claimed.push_back(frame);
    }
  };
  {
    telemetry::ChildSpan collect_span(vcpu.clock(), telemetry::SpanPhase::kDirtyTrack);
    collect_and_claim();
  }
  // The drain above cannot close the pipeline for good: a concurrent evictor
  // may have submitted async writebacks of in-range pages since, and those
  // frames' dirty bits were cleared at claim, so the collection missed them.
  // Wait them out before promising durability — a success is on the device
  // before msync returns, a failure is restored dirty-in-place, and the
  // re-collection claims it for the synchronous pass below.
  auto await_in_range = [&] {
    telemetry::ChildSpan wait_span(vcpu.clock(), telemetry::SpanPhase::kQueueWait);
    return engine_->AwaitWritebacks(vcpu, first_page, last_page);
  };
  while (engine_ != nullptr && await_in_range()) {
    telemetry::ChildSpan collect_span(vcpu.clock(), telemetry::SpanPhase::kDirtyTrack);
    collect_and_claim();
  }

  // Shoot down stale writable TLB entries before reading page contents.
  runtime_->ShootdownPages(vcpu, vpns);

  Status status;
  {
    telemetry::ChildSpan wb_span(vcpu.clock(), telemetry::SpanPhase::kWriteback,
                                 planner.size());
    status = planner.SubmitSync(vcpu);
    if (status.ok()) {
      status = backing_->Flush(vcpu);
    }
  }
  if (!planner.empty()) {
    NoteWritebackResult(status);
  }
  if (!status.ok()) {
    // msync failed: nothing was durably acknowledged. Re-mark every claimed
    // frame dirty (they are still mapped; only the PTEs were write-protected)
    // so the data survives for a retry, then surface the EIO to the caller.
    {
      ScopedMeasure measure(vcpu.clock(), CostCategory::kDirtyTracking);
      for (const WritebackItem& item : planner.items()) {
        cache.MarkDirty(vcpu.core(), item.frame, item.sort_key);
      }
    }
    for (FrameId frame : claimed) {
      cache.frame(frame).state.store(FrameState::kResident, std::memory_order_release);
    }
    return status;
  }
  runtime_->fault_stats().writeback_pages.fetch_add(planner.size(),
                                                    std::memory_order_relaxed);
  for (FrameId frame : claimed) {
    cache.frame(frame).state.store(FrameState::kResident, std::memory_order_release);
  }
  AQUILA_TELEMETRY_ONLY(telemetry::RecordSpanSince(GetFaultMetrics().msync,
                                                   telemetry::TraceEventType::kMsync,
                                                   vcpu.clock(), msync_start,
                                                   planner.size()));
  return Status::Ok();
}

Status AquilaMap::Advise(uint64_t offset, uint64_t length, Advice advice) {
  Vcpu& vcpu = ThisVcpu();
  PageCache& cache = runtime_->cache();
  switch (advice) {
    case Advice::kNormal:
    case Advice::kRandom:
    case Advice::kSequential:
      advice_.store(advice, std::memory_order_relaxed);
      if (advice == Advice::kSequential) {
        // A fresh kSequential hint starts a new stream: re-open the
        // readahead window wherever the next fault lands.
        next_readahead_.store(0, std::memory_order_relaxed);
      }
      return Status::Ok();
    case Advice::kWillNeed: {
      // Prefetch like read-ahead, page by page, never evicting.
      uint64_t first = offset >> kPageShift;
      uint64_t last = std::min((offset + length - 1) >> kPageShift, vma_.page_count - 1);
      if (first > 0) {
        (void)ReadAhead(vcpu, first - 1);  // best effort, like the fault path
      }
      for (uint64_t file_page = first; file_page < last;
           file_page += runtime_->options().readahead_pages) {
        (void)ReadAhead(vcpu, file_page);
      }
      return Status::Ok();
    }
    case Advice::kDontNeed: {
      uint64_t first = offset >> kPageShift;
      uint64_t last = std::min((offset + length - 1) >> kPageShift, vma_.page_count - 1);
      const bool async = engine_ != nullptr;
      const bool reuse_defer =
          runtime_->options().shootdown_mask_mode == ShootdownMaskMode::kReuseElide;
      WritebackPlanner planner;
      std::vector<PageShootdown> vpns;
      struct FreeSlot {
        FrameId frame;
        ReuseStamp stamp;
      };
      std::vector<FreeSlot> to_free;
      std::vector<uint64_t> locked_pages;
      for (uint64_t file_page = first; file_page <= last; file_page++) {
        uint64_t page = vma_.start_page + file_page;
        Vma* vma;
        if (!runtime_->vma_tree().TryLockEntry(page, &vma)) {
          continue;
        }
        if (spans_ != nullptr) {
          // Partial eviction of a huge span: split before the per-page
          // Remove below, which cannot see through a 2 MB leaf.
          DemoteSpanForPage(vcpu, file_page);
        }
        uint64_t key = MakeKey(vma_.mapping_id, file_page);
        FrameId frame;
        if (!cache.Lookup(key, &frame)) {
          UnlockPage(page);
          continue;
        }
        Frame& f = cache.frame(frame);
        FrameState expected = FrameState::kResident;
        if (!f.state.compare_exchange_strong(expected, FrameState::kEvicting,
                                             std::memory_order_acq_rel)) {
          UnlockPage(page);
          continue;
        }
        if (f.key.load(std::memory_order_relaxed) != key) {
          // A read-ahead frame (evictable without our entry lock) was freed
          // and recycled between the lookup and the claim; it is not ours.
          f.state.store(FrameState::kResident, std::memory_order_release);
          UnlockPage(page);
          continue;
        }
        uint64_t fvaddr = f.vaddr.load(std::memory_order_relaxed);
        if (fvaddr != 0) {
          uint64_t old_pte = runtime_->page_table().Remove(fvaddr);
          if (Pte::Present(old_pte)) {
            NotePteRemoved(file_page);
          }
        }
        if (transparent_base_ != nullptr && fvaddr != 0) {
          TrapDriver::RemoveRealMapping(fvaddr);
        }
        // Unified capture rule (CaptureShootdownPage): frame claimed
        // (kEvicting) and entry lock held, PTE removed above — before
        // FreeFrame can recycle.
        PageShootdown captured = CaptureShootdownPage(f, page);
        if (f.dirty.load(std::memory_order_relaxed) != 0) {
          vpns.push_back(captured);
          cache.ClearDirty(frame);
          planner.Add(WritebackItem{f.dirty_item.sort_key, file_page * kPageSize,
                                    cache.FrameData(vcpu, frame), backing_, frame, this});
          if (async) {
            // As in eviction: the cache mapping stays so a re-fault waits out
            // kWritingBack; the completion drops the mapping and the frame.
            f.state.store(FrameState::kWritingBack, std::memory_order_release);
            UnlockPage(page);
          } else {
            cache.RemoveMapping(key);
            locked_pages.push_back(page);
          }
        } else {
          cache.RemoveMapping(key);
          ReuseStamp stamp;
          if (reuse_defer && fvaddr != 0) {
            // Clean drop: defer the shootdown like the eviction path. A
            // discard-then-retouch is exactly the same-owner reuse the
            // elision targets — a clean page's refill re-reads the same
            // device bytes, so the stale translations stay harmless. Dirty
            // drops go through the writeback branch above and are never
            // deferred.
            stamp = runtime_->DeferPageShootdown(captured, vma_.mapping_id,
                                                 vcpu.core(), frame);
          } else {
            vpns.push_back(captured);
          }
          UnlockPage(page);
          to_free.push_back({frame, stamp});
        }
      }
      Status wb_status = Status::Ok();
      if (!planner.empty()) {
        if (async) {
          wb_status = planner.SubmitAsync(vcpu);
        } else {
          wb_status = planner.SubmitSync(vcpu);
          NoteWritebackResult(wb_status);
          if (wb_status.ok()) {
            runtime_->fault_stats().writeback_pages.fetch_add(planner.size(),
                                                              std::memory_order_relaxed);
            for (const WritebackItem& item : planner.items()) {
              to_free.push_back({item.frame, ReuseStamp{}});
            }
          } else {
            // Failed pages stay cached and dirty; madvise reports the EIO but
            // the clean pages below are still dropped.
            for (const WritebackItem& item : planner.items()) {
              RestoreDirtyFrame(vcpu, item.frame, item.sort_key, /*reinsert_mapping=*/true);
            }
          }
          for (uint64_t page : locked_pages) {
            UnlockPage(page);
          }
        }
      }
      runtime_->ShootdownPages(vcpu, vpns);
      for (const FreeSlot& slot : to_free) {
        cache.FreeFrame(vcpu.core(), slot.frame, slot.stamp);
      }
      return wb_status;
    }
  }
  return Status::InvalidArgument("unknown advice");
}

// --- Transparent 2 MB huge pages (DESIGN.md §14) -----------------------------

void AquilaMap::FaultAround(Vcpu& vcpu, uint64_t file_page) {
  const uint32_t budget = runtime_->options().fault_around_pages;
  if (budget == 0) {
    return;
  }
  PageCache& cache = runtime_->cache();
  // Forward window, clamped to this 2 MB span (like Linux's PMD-bounded
  // fault-around) and to the mapping.
  const uint64_t span_end = (SpanOf(file_page) + 1) * kSpanPages;
  const uint64_t last =
      std::min({file_page + budget, span_end - 1, vma_.page_count - 1});
  uint64_t mapped = 0;
  uint64_t highest = 0;
  ScopedMeasure measure(vcpu.clock(), CostCategory::kCacheMgmt);
  for (uint64_t fp = file_page + 1; fp <= last; fp++) {
    uint64_t page = vma_.start_page + fp;
    uint64_t vaddr = page << kPageShift;
    Vma* vma;
    if (!runtime_->vma_tree().TryLockEntry(page, &vma)) {
      continue;
    }
    if (Pte::Present(runtime_->page_table().Lookup(vaddr))) {
      UnlockPage(page);
      continue;
    }
    uint64_t key = MakeKey(vma_.mapping_id, fp);
    FrameId frame;
    if (!cache.Lookup(key, &frame)) {
      UnlockPage(page);
      continue;
    }
    Frame& f = cache.frame(frame);
    // Pin before touching, exactly like the minor-fault path: a readahead
    // frame (vaddr == 0) is evictable without our entry lock.
    FrameState expected = FrameState::kResident;
    if (!f.state.compare_exchange_strong(expected, FrameState::kFilling,
                                         std::memory_order_acq_rel)) {
      UnlockPage(page);
      continue;  // fill/eviction/writeback in flight; it can fault in later
    }
    if (f.key.load(std::memory_order_relaxed) != key) {
      // Evicted and recycled for another page between lookup and pin.
      f.state.store(FrameState::kResident, std::memory_order_release);
      UnlockPage(page);
      continue;
    }
    runtime_->ResolveDeferredForVpn(vcpu, page, frame);
    f.vaddr.store(vaddr, std::memory_order_relaxed);
    AQUILA_RACE_POINT("huge.fault_around.pre_install");
    // Read-only even when the triggering fault was a write: the neighbor
    // itself was not written, and its first write takes the upgrade fault.
    AQUILA_CHECK(runtime_->page_table().Install(
        vaddr, static_cast<uint64_t>(frame) << kPageShift, Pte::kAccessed));
    NotePteInstalled(fp);
    f.referenced.store(1, std::memory_order_relaxed);
    f.state.store(FrameState::kResident, std::memory_order_release);
    UnlockPage(page);
    mapped++;
    highest = fp;
  }
  if (mapped == 0) {
    return;
  }
  runtime_->huge_stats().fault_around_mapped.fetch_add(mapped, std::memory_order_relaxed);
  // Fault-around consumed these pages: advance the readahead high-water mark
  // past them so the windowed prefetcher does not resubmit their fills.
  uint64_t target = highest + 1;
  uint64_t seen = next_readahead_.load(std::memory_order_relaxed);
  while (seen < target &&
         !next_readahead_.compare_exchange_weak(seen, target, std::memory_order_relaxed)) {
  }
}

bool AquilaMap::PromotionEligible(uint64_t span) const {
  const uint32_t threshold = runtime_->options().huge_promote_threshold;
  if (threshold == 0) {
    return false;  // fault-around only; never promote
  }
  // Only full-size spans promote: the 2 MB leaf maps all kSpanPages pages,
  // so every one must exist in both the mapping and the backing file.
  if ((span + 1) * kSpanPages > vma_.page_count ||
      (span + 1) * kSpanPages * kPageSize > backing_->size_bytes()) {
    return false;
  }
  const HugeSpan& s = spans_[span];
  if (static_cast<SpanState>(s.state.load(std::memory_order_acquire)) != SpanState::k4K) {
    return false;
  }
  // An explicit sequential hint promotes on first touch (the madvise analog
  // of MADV_HUGEPAGE); otherwise wait for the density signal.
  uint32_t needed = advice_.load(std::memory_order_relaxed) == Advice::kSequential
                        ? 1
                        : std::min<uint32_t>(threshold, kSpanPages);
  return s.resident.load(std::memory_order_relaxed) >= needed;
}

void AquilaMap::MaybePromote(Vcpu& vcpu, uint64_t span) {
  HugeSpan& s = spans_[span];
  // Cheap pre-check: without an intact run the full protocol (512 TryLocks,
  // up to 512 claims, unwind) can only discover the same answer the hard
  // way — and a dense span that cannot promote re-arms on EVERY fault, so
  // the waste compounds. Approximate is fine: a lost race just aborts below.
  if (!runtime_->cache().RunAvailable()) {
    runtime_->huge_stats().promote_aborts.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint8_t expected = static_cast<uint8_t>(SpanState::k4K);
  if (!s.state.compare_exchange_strong(expected, static_cast<uint8_t>(SpanState::kPromoting),
                                       std::memory_order_acq_rel)) {
    return;  // another promoter or a demotion won the span; not an abort
  }
  if (!TryPromote(vcpu, span)) {
    runtime_->huge_stats().promote_aborts.fetch_add(1, std::memory_order_relaxed);
  }
}

bool AquilaMap::TryPromote(Vcpu& vcpu, uint64_t span) {
  PageCache& cache = runtime_->cache();
  HugeSpan& s = spans_[span];
  const uint64_t base_fp = span * kSpanPages;
  const uint64_t base_page = vma_.start_page + base_fp;
  const uint64_t base_vaddr = base_page << kPageShift;

  // (1) Entry locks for the whole span, TryLock only — this is what makes a
  // demoter's spin on kPromoting deadlock-free (see the SpanState comment).
  struct OldFrame {
    uint64_t fp;
    FrameId frame;
  };
  std::vector<OldFrame> old_frames;
  old_frames.reserve(kSpanPages);
  uint64_t locked = 0;
  FrameId run = kInvalidFrame;
  bool ok = true;
  for (; locked < kSpanPages; locked++) {
    Vma* vma;
    if (!runtime_->vma_tree().TryLockEntry(base_page + locked, &vma)) {
      ok = false;
      break;
    }
  }

  // (2) Claim every resident page of the span; abort on anything in flight
  // (pending fill, writeback, eviction) or dirty — the 2 MB leaf is
  // read-only, so promoting over a dirty 4K page would lose its dirtiness.
  if (ok) {
    ScopedMeasure measure(vcpu.clock(), CostCategory::kCacheMgmt);
    for (uint64_t i = 0; i < kSpanPages; i++) {
      uint64_t key = MakeKey(vma_.mapping_id, base_fp + i);
      FrameId frame;
      bool hit = cache.Lookup(key, &frame);
      if (!hit && engine_ != nullptr) {
        if (engine_->HasPendingFill(key)) {
          // An in-flight readahead fill would publish into our hash slot
          // mid-promotion. Its completion publishes under the engine lock
          // HasPendingFill just took, so the re-check below cannot miss a
          // fill that completed before the verdict.
          ok = false;
          break;
        }
        hit = cache.Lookup(key, &frame);
      }
      if (!hit) {
        continue;  // not resident; the run fill below reads it from the device
      }
      Frame& f = cache.frame(frame);
      AQUILA_RACE_POINT("huge.promote.pre_claim");
      FrameState expected = FrameState::kResident;
      if (!f.state.compare_exchange_strong(expected, FrameState::kEvicting,
                                           std::memory_order_acq_rel)) {
        ok = false;  // a fill, writeback, or eviction owns the frame
        break;
      }
      if (f.key.load(std::memory_order_relaxed) != key ||
          f.dirty.load(std::memory_order_relaxed) != 0) {
        // Recycled under us, or dirty divergence: unclaim and abort.
        f.state.store(FrameState::kResident, std::memory_order_release);
        ok = false;
        break;
      }
      old_frames.push_back({base_fp + i, frame});
    }
  }

  // (3) The aligned frame run.
  if (ok) {
    ScopedMeasure measure(vcpu.clock(), CostCategory::kCacheMgmt);
    run = cache.AllocRun(vcpu.core());
    ok = run != kInvalidFrame;
  }

  // (4) Fill the whole span with ONE batched device submission. Clean
  // resident pages equal the device bytes by definition, so re-reading the
  // full 2 MB is correct and keeps this a single request instead of a
  // scatter of copies plus a sub-batch read.
  if (ok) {
    std::vector<uint64_t> offsets(kSpanPages);
    std::vector<uint8_t*> buffers(kSpanPages);
    for (uint64_t i = 0; i < kSpanPages; i++) {
      offsets[i] = (base_fp + i) * kPageSize;
      buffers[i] = cache.FrameData(vcpu, run + static_cast<FrameId>(i));
    }
    Status fill;
    {
      telemetry::ChildSpan device_span(vcpu.clock(), telemetry::SpanPhase::kDevice,
                                       base_fp * kPageSize);
      fill = backing_->ReadPages(vcpu, offsets, buffers, kPageSize);
    }
    ok = fill.ok();
  }

  if (!ok) {
    // Unwind in reverse: run, claims, locks, span state.
    if (run != kInvalidFrame) {
      cache.FreeRun(vcpu.core(), run);
    }
    for (const OldFrame& of : old_frames) {
      cache.frame(of.frame).state.store(FrameState::kResident, std::memory_order_release);
    }
    for (uint64_t i = 0; i < locked; i++) {
      UnlockPage(base_page + i);
    }
    s.state.store(static_cast<uint8_t>(SpanState::k4K), std::memory_order_release);
    return false;
  }

  runtime_->huge_stats().runs_carved.fetch_add(1, std::memory_order_relaxed);

  // (5) Retire the 4K frames: PTE out, shootdown captured, mapping dropped,
  // frame freed — all under the entry locks, so no faulter can re-install.
  std::vector<PageShootdown> vpns;
  vpns.reserve(old_frames.size());
  std::vector<FrameId> retired;
  retired.reserve(old_frames.size());
  {
    ScopedMeasure measure(vcpu.clock(), CostCategory::kCacheMgmt);
    for (const OldFrame& of : old_frames) {
      Frame& f = cache.frame(of.frame);
      uint64_t fvaddr = f.vaddr.load(std::memory_order_relaxed);
      if (fvaddr != 0) {
        uint64_t old_pte = runtime_->page_table().Remove(fvaddr);
        if (Pte::Present(old_pte)) {
          NotePteRemoved(of.fp);
        }
        // Unified capture rule (CaptureShootdownPage): frame claimed
        // (kEvicting), PTE removed above.
        vpns.push_back(CaptureShootdownPage(f, fvaddr >> kPageShift));
      }
      cache.RemoveMapping(MakeKey(vma_.mapping_id, of.fp));
      retired.push_back(of.frame);
    }
    // One batched free to the NUMA level: up to 512 frames retired at a
    // stroke would vanish into this core's queue (under the overflow
    // threshold) while other cores, out of singles and runs, spin through
    // empty eviction sweeps waiting for exactly these frames.
    cache.FreeFrames(vcpu.core(), retired.data(),
                     static_cast<uint32_t>(retired.size()));

    // (6) Publish the run's frames as the span's residents: the cache keeps
    // seeing per-4K entries (msync, DONTNEED, and eviction stay
    // huge-oblivious up to the demote hooks), they just happen to be
    // id-contiguous.
    for (uint64_t i = 0; i < kSpanPages; i++) {
      FrameId frame = run + static_cast<FrameId>(i);
      uint64_t key = MakeKey(vma_.mapping_id, base_fp + i);
      uint64_t vaddr = (base_page + i) << kPageShift;
      runtime_->ResolveDeferredForVpn(vcpu, base_page + i, frame);
      Frame& f = cache.frame(frame);
      f.key.store(key, std::memory_order_relaxed);
      f.vaddr.store(vaddr, std::memory_order_relaxed);
      AQUILA_CHECK(cache.InsertMapping(key, frame));
      f.referenced.store(1, std::memory_order_relaxed);
      f.state.store(FrameState::kResident, std::memory_order_release);
    }
  }

  // (7) Shoot down the retired translations BEFORE the huge install: while
  // we hold every entry lock no new 4K TLB entry for the span can be minted,
  // so the flush cannot race a fresh insert.
  runtime_->ShootdownPages(vcpu, vpns);

  // (8) One 2 MB guest-PT leaf over the run, read-only — the first write
  // demotes (dirty divergence) rather than dirtying 2 MB at a stroke. The
  // guest PT's "GPA" space is frame_id << 12, where contiguous run frames
  // are exactly a 2 MB extent; the EPT-side assert checks the hypervisor-GPA
  // run (aligned by the freelist's carve anchor) sits under one large
  // mapping, i.e. the hardware could genuinely serve this as a huge page.
  {
    ScopedMeasure measure(vcpu.clock(), CostCategory::kPageTable);
    AQUILA_RACE_POINT("huge.promote.pre_install");
    AQUILA_CHECK(runtime_->page_table().InstallHuge(
        base_vaddr, static_cast<uint64_t>(run) << kPageShift, Pte::kAccessed));
  }
  // Sub-2MB EPT chunks can never satisfy this (the run then spans chunks);
  // the promotion still works in the simulation, it just is not
  // hardware-realizable, so only assert when chunks are large enough.
  AQUILA_DCHECK(runtime_->hypervisor().chunk_size() < kHugePage2M ||
                runtime_->hypervisor().GuestEpt(runtime_->guest())
                        .MappedPageSize(cache.frame(run).gpa) >= kHugePage2M);

  s.run_first.store(run, std::memory_order_relaxed);
  AQUILA_DCHECK(s.resident.load(std::memory_order_relaxed) == 0);
  s.resident.store(0, std::memory_order_relaxed);
  s.state.store(static_cast<uint8_t>(SpanState::kHuge), std::memory_order_release);
  runtime_->huge_stats().promotions.fetch_add(1, std::memory_order_relaxed);

  for (uint64_t i = 0; i < kSpanPages; i++) {
    UnlockPage(base_page + i);
  }
  return true;
}

void AquilaMap::DemoteSpan(Vcpu& vcpu, uint64_t span) {
  HugeSpan& s = spans_[span];
  SpinBackoff backoff;
  while (true) {
    uint8_t state = s.state.load(std::memory_order_acquire);
    if (state == static_cast<uint8_t>(SpanState::k4K)) {
      return;
    }
    if (state == static_cast<uint8_t>(SpanState::kHuge)) {
      if (s.state.compare_exchange_strong(state, static_cast<uint8_t>(SpanState::kDemoting),
                                          std::memory_order_acq_rel)) {
        break;
      }
      continue;
    }
    // kPromoting or another demoter: wait it out. Safe even while holding
    // one entry lock of the span — the promoter only TryLocks, so it aborts
    // against our lock instead of blocking on it.
    backoff.Pause();
  }

  ScopedMeasure measure(vcpu.clock(), CostCategory::kPageTable);
  uint64_t base_vaddr = (vma_.start_page + span * kSpanPages) << kPageShift;
  AQUILA_RACE_POINT("huge.demote.pre_split");
  uint64_t huge = runtime_->page_table().SplitHuge(base_vaddr);
  AQUILA_CHECK(Pte::Huge(huge));
  // No shootdown: the 512 fresh 4K PTEs translate identically to the huge
  // leaf (same frames, same read-only flags), so every cached TLB entry
  // stays correct through the split.
  s.run_first.store(kInvalidFrame, std::memory_order_relaxed);
  s.resident.store(static_cast<uint32_t>(kSpanPages), std::memory_order_relaxed);
  s.state.store(static_cast<uint8_t>(SpanState::k4K), std::memory_order_release);
  runtime_->huge_stats().demotions.fetch_add(1, std::memory_order_relaxed);
  // The run's frames now evict/writeback/discard individually; the run
  // fragments and its frames return to the freelist as singles.
}

void AquilaMap::DemoteSpanForPage(Vcpu& vcpu, uint64_t file_page) {
  uint64_t span = SpanOf(file_page);
  if (span >= span_count_) {
    return;
  }
  if (static_cast<SpanState>(spans_[span].state.load(std::memory_order_acquire)) !=
      SpanState::k4K) {
    DemoteSpan(vcpu, span);
  }
}

void AquilaMap::DemoteAllSpans(Vcpu& vcpu) {
  for (uint64_t span = 0; span < span_count_; span++) {
    DemoteSpan(vcpu, span);
  }
}

Status AquilaMap::Protect(int prot) {
  if ((prot & (kProtRead | kProtWrite)) == 0) {
    return Status::InvalidArgument("mprotect needs read or write");
  }
  Vcpu& vcpu = ThisVcpu();
  bool dropping_write = (vma_.prot & kProtWrite) != 0 && (prot & kProtWrite) == 0;
  vma_.prot = prot;
  if (!dropping_write) {
    return Status::Ok();
  }
  // Downgrade: clear W on every present PTE and shoot down stale entries.
  std::vector<PageShootdown> vpns;
  for (uint64_t i = 0; i < vma_.page_count; i++) {
    uint64_t vaddr = (vma_.start_page + i) << kPageShift;
    std::atomic<uint64_t>* pte = runtime_->page_table().WalkExisting(vaddr);
    if (pte == nullptr) {
      continue;
    }
    uint64_t old = pte->fetch_and(~Pte::kWritable, std::memory_order_acq_rel);
    if (Pte::Present(old) && Pte::Writable(old)) {
      if (transparent_base_ != nullptr) {
        TrapDriver::DowngradeRealMapping(vaddr);
      }
      // Unified capture rule (CaptureShootdownPage): this is the ONE
      // unclaimed site, by design — the atomic W clear above precedes the
      // capture, so a racing faulter can only insert a read-only entry and
      // a conservatively stale mask/epoch costs at most an elidable IPI.
      Frame& f = runtime_->cache().frame(static_cast<FrameId>(Pte::Gpa(old) >> kPageShift));
      vpns.push_back(CaptureShootdownPage(f, vma_.start_page + i));
    }
  }
  runtime_->ShootdownPages(vcpu, vpns);
  return Status::Ok();
}

}  // namespace aquila
