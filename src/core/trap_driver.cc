#include "src/core/trap_driver.h"

#include <signal.h>
#include <sys/mman.h>
#include <ucontext.h>

#include <array>
#include <atomic>
#include <cstring>

#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/telemetry/metrics.h"
#include "src/util/bitops.h"
#include "src/util/logging.h"

namespace aquila {

namespace {

constexpr int kMaxRuntimes = 16;
std::array<std::atomic<Aquila*>, kMaxRuntimes> g_runtimes{};
std::atomic<uint64_t> g_handled_faults{0};
std::atomic<bool> g_installed{false};
struct sigaction g_previous_action;

// Pre-registered in Install(): the registry's get-or-create takes a lock and
// may allocate, neither of which is legal inside the SIGSEGV handler.
std::atomic<Histogram*> g_fault_hist{nullptr};
std::atomic<telemetry::Counter*> g_real_faults{nullptr};

// Each thread that can fault on a trap mapping gets its own signal stack:
// the handler runs the full fault path (eviction, writeback, device model),
// which needs real stack depth — and, as §4.2 notes for the ring-0 case,
// handlers must not clobber the interrupted frame's red zone.
constexpr size_t kSignalStackBytes = 512 * 1024;

void EnsureThreadSignalStack() {
  static thread_local char* stack = nullptr;
  if (stack != nullptr) {
    return;
  }
  stack = new char[kSignalStackBytes];
  stack_t ss{};
  ss.ss_sp = stack;
  ss.ss_size = kSignalStackBytes;
  ss.ss_flags = 0;
  AQUILA_CHECK(sigaltstack(&ss, nullptr) == 0);
}

void FallThrough(int signo, siginfo_t* info, void* context) {
  // Not ours: restore the previous disposition and let the fault re-raise,
  // so genuine wild accesses still crash with a useful report.
  if (g_previous_action.sa_flags & SA_SIGINFO) {
    if (g_previous_action.sa_sigaction != nullptr) {
      g_previous_action.sa_sigaction(signo, info, context);
      return;
    }
  } else if (g_previous_action.sa_handler == SIG_IGN) {
    return;
  } else if (g_previous_action.sa_handler != SIG_DFL &&
             g_previous_action.sa_handler != nullptr) {
    g_previous_action.sa_handler(signo);
    return;
  }
  signal(SIGSEGV, SIG_DFL);
}

void SigsegvHandler(int signo, siginfo_t* info, void* context) {
  uint64_t vaddr = reinterpret_cast<uint64_t>(info->si_addr);
  bool write = false;
#if defined(__x86_64__)
  auto* uc = static_cast<ucontext_t*>(context);
  // x86 page-fault error code: bit 1 set on writes.
  write = (uc->uc_mcontext.gregs[REG_ERR] & 2) != 0;
#endif
  uint64_t page = vaddr >> kPageShift;
  for (auto& slot : g_runtimes) {
    Aquila* runtime = slot.load(std::memory_order_acquire);
    if (runtime == nullptr) {
      continue;
    }
    Vma* vma = runtime->vma_tree().Find(page);
    if (vma == nullptr) {
      continue;
    }
    auto* map = static_cast<AquilaMap*>(vma->backing);
    if (!map->transparent()) {
      continue;
    }
    AQUILA_TELEMETRY_ONLY(const uint64_t trap_start = ThisVcpu().clock().Now());
    Status status = map->HandleTrapFault(vaddr, write);
    if (status.ok()) {
      g_handled_faults.fetch_add(1, std::memory_order_relaxed);
#if AQUILA_TELEMETRY_ENABLED
      // No trace-ring writes here: the ring registration path allocates.
      if (telemetry::Counter* real_faults = g_real_faults.load(std::memory_order_acquire)) {
        real_faults->Add();
      }
      if (Histogram* hist = g_fault_hist.load(std::memory_order_acquire)) {
        hist->Record(ThisVcpu().clock().Now() - trap_start);
      }
#endif
      return;  // translation installed; the instruction restarts
    }
    if (status.code() == StatusCode::kIoError) {
      // The mapping is ours but the backing device failed — the analog of
      // the SIGBUS the kernel raises when an mmap read hits EIO. Give the
      // application its shot (it typically siglongjmps out); if the handler
      // returns or is unset, fall through to the default disposition and
      // die, matching unhandled SIGBUS.
      const auto& sigbus = runtime->options().sigbus_handler;
      if (sigbus) {
        sigbus(vaddr, status);
      }
      break;
    }
  }
  FallThrough(signo, info, context);
}

}  // namespace

void TrapDriver::Install() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) {
    EnsureThreadSignalStack();
    return;
  }
  EnsureThreadSignalStack();
#if AQUILA_TELEMETRY_ENABLED
  g_fault_hist.store(telemetry::Registry().GetHistogram("aquila.trap.fault_cycles"),
                     std::memory_order_release);
  g_real_faults.store(telemetry::Registry().GetCounter("aquila.trap.real_faults"),
                      std::memory_order_release);
#endif
  struct sigaction action{};
  action.sa_sigaction = SigsegvHandler;
  action.sa_flags = SA_SIGINFO | SA_ONSTACK | SA_NODEFER;
  sigemptyset(&action.sa_mask);
  AQUILA_CHECK(sigaction(SIGSEGV, &action, &g_previous_action) == 0);
}

void TrapDriver::RegisterRuntime(Aquila* runtime) {
  for (auto& slot : g_runtimes) {
    Aquila* expected = nullptr;
    if (slot.compare_exchange_strong(expected, runtime)) {
      return;
    }
    if (expected == runtime) {
      return;
    }
  }
  AQUILA_CHECK(false);  // more than kMaxRuntimes concurrent runtimes
}

void TrapDriver::UnregisterRuntime(Aquila* runtime) {
  for (auto& slot : g_runtimes) {
    Aquila* expected = runtime;
    slot.compare_exchange_strong(expected, nullptr);
  }
}

uint8_t* TrapDriver::ReserveRange(uint64_t bytes) {
  void* base = mmap(nullptr, bytes, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE,
                    -1, 0);
  return base == MAP_FAILED ? nullptr : static_cast<uint8_t*>(base);
}

void TrapDriver::ReleaseRange(uint8_t* base, uint64_t bytes) {
  if (base != nullptr) {
    munmap(base, bytes);
  }
}

void TrapDriver::InstallRealMapping(Aquila* runtime, uint64_t vaddr, uint64_t gpa,
                                    bool writable) {
  Hypervisor& hv = runtime->hypervisor();
  AQUILA_CHECK(hv.backing_fd() >= 0);
  uint8_t* host = hv.ResolveGpa(ThisVcpu(), runtime->guest(), gpa);
  uint64_t hpa = static_cast<uint64_t>(host - hv.HostPtr(0));
  int prot = PROT_READ | (writable ? PROT_WRITE : 0);
  void* mapped = mmap(reinterpret_cast<void*>(vaddr), kPageSize, prot,
                      MAP_SHARED | MAP_FIXED, hv.backing_fd(), static_cast<off_t>(hpa));
  AQUILA_CHECK(mapped == reinterpret_cast<void*>(vaddr));
}

void TrapDriver::UpgradeRealMapping(uint64_t vaddr) {
  AQUILA_CHECK(mprotect(reinterpret_cast<void*>(vaddr), kPageSize,
                        PROT_READ | PROT_WRITE) == 0);
}

void TrapDriver::DowngradeRealMapping(uint64_t vaddr) {
  AQUILA_CHECK(mprotect(reinterpret_cast<void*>(vaddr), kPageSize, PROT_READ) == 0);
}

void TrapDriver::RemoveRealMapping(uint64_t vaddr) {
  // Atomic replace with an inaccessible anonymous page keeps the range
  // reserved (a real munmap would open a hole another mmap could claim).
  void* mapped = mmap(reinterpret_cast<void*>(vaddr), kPageSize, PROT_NONE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED | MAP_NORESERVE, -1, 0);
  AQUILA_CHECK(mapped == reinterpret_cast<void*>(vaddr));
}

uint64_t TrapDriver::HandledFaults() { return g_handled_faults.load(std::memory_order_relaxed); }

}  // namespace aquila
