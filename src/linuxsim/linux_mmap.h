// Linux mmap baseline simulator (and the kmmap variant).
//
// This is the comparator for Figures 5, 6, 8, 9 and 10: a faithful model of
// the behaviors the paper measures against —
//   * every page fault is a ring3 -> ring0 protection-domain switch
//     (1287 cycles) plus the kernel's generic fault path;
//   * a single per-file tree lock serializes fault handling, page insertion,
//     AND dirty marking (§6.5 finds this lock is why a shared file does not
//     scale) — modeled as a SerializedResource so the collapse is
//     deterministic;
//   * a global LRU/allocation lock (lru_lock) adds a second, smaller
//     serialization point that hits even the file-per-thread case;
//   * mmap read-ahead fetches 128 KB (32 pages) on every miss — the reason
//     Fig 5(b) shows mmap losing badly when 1 KB values miss in the cache;
//   * writeback is aggressive: once dirty pages exceed a ratio, fault paths
//     synchronously clean a batch (Tucana's observed stalls).
//
// The kmmap variant (Kreon's custom kernel path, §7.2) disables read-ahead
// and uses lazy writeback but keeps kernel traps and the shared locks.
//
// Functional state is guarded by one real mutex (we model contention in
// simulated time, not wall-clock), while data copies and device I/O execute
// for real so applications read correct bytes.
#ifndef AQUILA_SRC_LINUXSIM_LINUX_MMAP_H_
#define AQUILA_SRC_LINUXSIM_LINUX_MMAP_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/mmio.h"
#include "src/telemetry/metrics.h"
#include "src/util/sim_clock.h"
#include "src/vma/vma_tree.h"
#include "src/vmx/vcpu.h"

namespace aquila {

class LinuxMap;

class LinuxMmapEngine : public MmioEngine {
 public:
  struct Options {
    // cgroup memory limit for the page cache, in pages.
    uint64_t cache_pages = (64ull << 20) / 4096;
    // Fault read-ahead window (Linux: 128 KB = 32 pages). kmmap: 0.
    uint32_t readahead_pages = 32;
    // Aggressive background writeback (Linux). kmmap: lazy.
    bool aggressive_writeback = true;
    // Dirty threshold (fraction of cache, x/256) that triggers synchronous
    // cleaning in the fault path.
    uint32_t dirty_ratio_256 = 64;
    // Kernel software path lengths (cycles) charged per operation, on top of
    // the architectural trap cost.
    uint64_t fault_path_cycles = 1200;   // generic fault entry + vma walk
    uint64_t tree_lock_cycles = 900;     // per-file tree critical section
    uint64_t lru_lock_cycles = 250;      // global lru/alloc critical section
    uint64_t dirty_mark_cycles = 500;    // tree-locked dirty accounting
  };

  static Options KmmapOptions(uint64_t cache_pages) {
    Options options;
    options.cache_pages = cache_pages;
    options.readahead_pages = 0;
    options.aggressive_writeback = false;
    return options;
  }

  explicit LinuxMmapEngine(const Options& options);
  ~LinuxMmapEngine() override;

  const char* name() const override { return options_.readahead_pages == 0 ? "kmmap" : "mmap"; }
  StatusOr<MemoryMap*> Map(Backing* backing, uint64_t length, int prot) override;
  Status Unmap(MemoryMap* map) override;
  void EnterThread() override { CoreRegistry::RegisterThisThread(); }

  struct Stats {
    std::atomic<uint64_t> major_faults{0};
    std::atomic<uint64_t> minor_faults{0};
    std::atomic<uint64_t> dirty_marks{0};
    std::atomic<uint64_t> evicted_pages{0};
    std::atomic<uint64_t> writeback_pages{0};
    std::atomic<uint64_t> readahead_pages{0};
    std::atomic<uint64_t> writeback_errors{0};
  };
  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }
  uint64_t resident_pages() const { return resident_pages_; }

 private:
  friend class LinuxMap;

  struct PageEntry {
    LinuxMap* owner = nullptr;
    uint64_t file_page = 0;
    uint8_t* data = nullptr;
    bool dirty = false;
    bool referenced = false;
    std::list<PageEntry*>::iterator lru_pos;
  };

  // All callers hold mu_.
  uint8_t* AllocPageLocked(Vcpu& vcpu);
  void EvictLocked(Vcpu& vcpu, uint64_t target_pages);
  void WritebackLocked(Vcpu& vcpu, uint64_t max_pages);
  // Unhooks and frees `entry`, writing dirty data back first when
  // `write_dirty`. On writeback failure the entry stays resident and dirty
  // (the kernel keeps EIO pages in the cache) and the error is returned.
  Status DropEntryLocked(Vcpu& vcpu, PageEntry* entry, bool write_dirty);
  void TouchLruLocked(PageEntry* entry);

  Options options_;
  Stats stats_;

  std::mutex mu_;                      // real protection (coarse)
  SerializedResource lru_lock_;        // modeled global lru/alloc lock
  std::vector<uint8_t*> free_pages_;
  std::unique_ptr<uint8_t[]> pool_;
  uint64_t resident_pages_ = 0;
  uint64_t dirty_pages_ = 0;
  std::list<PageEntry*> global_lru_;   // front = oldest

  std::vector<std::unique_ptr<LinuxMap>> maps_;

  // Last member: callbacks read stats_, so they unregister first.
  telemetry::CallbackGroup metrics_;
};

class LinuxMap : public MemoryMap {
 public:
  LinuxMap(LinuxMmapEngine* engine, Backing* backing, uint64_t length, int prot);
  ~LinuxMap() override;

  uint64_t length() const override { return length_; }
  Status Read(uint64_t offset, std::span<uint8_t> dst) override;
  Status Write(uint64_t offset, std::span<const uint8_t> src) override;
  AccessResult TouchRead(uint64_t offset) override;
  AccessResult TouchWrite(uint64_t offset) override;
  Status Sync(uint64_t offset, uint64_t length) override;
  Status Advise(uint64_t offset, uint64_t length, Advice advice) override;

 private:
  friend class LinuxMmapEngine;
  using PageEntry = LinuxMmapEngine::PageEntry;

  // Returns the entry for `file_page`, faulting it in if needed. Caller
  // holds engine->mu_. `faulted` reports whether a fault was taken.
  StatusOr<PageEntry*> ResolveLocked(Vcpu& vcpu, uint64_t file_page, bool write, bool* faulted);

  LinuxMmapEngine* engine_;
  Backing* backing_;
  uint64_t length_;
  int prot_;
  Advice advice_ = Advice::kNormal;

  // The per-file radix tree (page index -> entry) and its modeled lock.
  std::unordered_map<uint64_t, PageEntry*> pages_;
  SerializedResource tree_lock_;
  // Pages whose PTE is "writable": a store to a page not in this set takes a
  // dirty-marking fault through the tree lock (§6.5).
  std::unordered_set<uint64_t> writable_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_LINUXSIM_LINUX_MMAP_H_
