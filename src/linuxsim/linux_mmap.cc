#include "src/linuxsim/linux_mmap.h"

#include <algorithm>
#include <cstring>

#include "src/util/bitops.h"
#include "src/util/logging.h"
#include "src/vmx/cost_model.h"

namespace aquila {

LinuxMmapEngine::LinuxMmapEngine(const Options& options) : options_(options) {
  pool_ = std::make_unique<uint8_t[]>(options_.cache_pages * kPageSize);
  free_pages_.reserve(options_.cache_pages);
  for (uint64_t i = 0; i < options_.cache_pages; i++) {
    free_pages_.push_back(pool_.get() + i * kPageSize);
  }

  metrics_.AddCounter("aquila.linuxsim.major_faults", stats_.major_faults);
  metrics_.AddCounter("aquila.linuxsim.minor_faults", stats_.minor_faults);
  metrics_.AddCounter("aquila.linuxsim.dirty_marks", stats_.dirty_marks);
  metrics_.AddCounter("aquila.linuxsim.evicted_pages", stats_.evicted_pages);
  metrics_.AddCounter("aquila.linuxsim.writeback_pages", stats_.writeback_pages);
  metrics_.AddCounter("aquila.linuxsim.readahead_pages", stats_.readahead_pages);
  metrics_.AddCounter("aquila.linuxsim.writeback_errors", stats_.writeback_errors);
  metrics_.AddGauge("aquila.linuxsim.resident_pages", [this] { return resident_pages_; });
}

LinuxMmapEngine::~LinuxMmapEngine() {
  std::vector<std::unique_ptr<LinuxMap>> maps;
  {
    std::lock_guard<std::mutex> guard(mu_);
    maps.swap(maps_);
  }
  // LinuxMap teardown flushes dirty pages.
  maps.clear();
}

StatusOr<MemoryMap*> LinuxMmapEngine::Map(Backing* backing, uint64_t length, int prot) {
  if (length == 0 || backing == nullptr || length > backing->size_bytes()) {
    return Status::InvalidArgument("bad mmap arguments");
  }
  if ((prot & (kProtRead | kProtWrite)) == 0) {
    return Status::InvalidArgument("mapping needs read or write protection");
  }
  // mmap itself is a syscall.
  ThisVcpu().ChargeSyscall();
  auto map = std::make_unique<LinuxMap>(this, backing, length, prot);
  LinuxMap* raw = map.get();
  std::lock_guard<std::mutex> guard(mu_);
  maps_.push_back(std::move(map));
  return static_cast<MemoryMap*>(raw);
}

Status LinuxMmapEngine::Unmap(MemoryMap* map) {
  ThisVcpu().ChargeSyscall();
  std::unique_ptr<LinuxMap> owned;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = std::find_if(maps_.begin(), maps_.end(),
                           [map](const auto& m) { return m.get() == map; });
    if (it == maps_.end()) {
      return Status::NotFound("not an active mapping");
    }
    owned = std::move(*it);
    maps_.erase(it);
  }
  owned.reset();  // destructor drops pages and writes back dirty data
  return Status::Ok();
}

uint8_t* LinuxMmapEngine::AllocPageLocked(Vcpu& vcpu) {
  // Global allocation/lru lock (smaller than the tree lock but shared by
  // every file).
  lru_lock_.Acquire(vcpu.clock(), CostCategory::kCacheMgmt, options_.lru_lock_cycles);
  if (free_pages_.empty()) {
    EvictLocked(vcpu, std::max<uint64_t>(32, options_.readahead_pages));
  }
  if (free_pages_.empty()) {
    return nullptr;
  }
  uint8_t* page = free_pages_.back();
  free_pages_.pop_back();
  return page;
}

void LinuxMmapEngine::TouchLruLocked(PageEntry* entry) { entry->referenced = true; }

Status LinuxMmapEngine::DropEntryLocked(Vcpu& vcpu, PageEntry* entry, bool write_dirty) {
  if (entry->dirty && write_dirty) {
    const uint8_t* data = entry->data;
    uint64_t offset = entry->file_page * kPageSize;
    Status status = entry->owner->backing_->WritePages(
        vcpu, std::span<const uint64_t>(&offset, 1), std::span<const uint8_t* const>(&data, 1),
        kPageSize);
    if (!status.ok()) {
      // The page stays resident and dirty; a future writeback retries.
      stats_.writeback_errors.fetch_add(1, std::memory_order_relaxed);
      entry->referenced = true;
      return status;
    }
    stats_.writeback_pages.fetch_add(1, std::memory_order_relaxed);
    dirty_pages_--;
  } else if (entry->dirty) {
    dirty_pages_--;
  }
  entry->owner->pages_.erase(entry->file_page);
  entry->owner->writable_.erase(entry->file_page);
  global_lru_.erase(entry->lru_pos);
  free_pages_.push_back(entry->data);
  resident_pages_--;
  delete entry;
  return Status::Ok();
}

void LinuxMmapEngine::EvictLocked(Vcpu& vcpu, uint64_t target_pages) {
  // kswapd-style two-pass clock over the global LRU.
  uint64_t evicted = 0;
  size_t scanned = 0;
  size_t limit = global_lru_.size() * 2;
  auto it = global_lru_.begin();
  while (evicted < target_pages && scanned < limit && !global_lru_.empty()) {
    if (it == global_lru_.end()) {
      it = global_lru_.begin();
    }
    PageEntry* entry = *it;
    ++it;
    scanned++;
    if (entry->referenced) {
      entry->referenced = false;
      continue;
    }
    // Eviction takes the victim file's tree lock to unhook the page.
    entry->owner->tree_lock_.Acquire(vcpu.clock(), CostCategory::kCacheMgmt,
                                     options_.tree_lock_cycles);
    if (!DropEntryLocked(vcpu, entry, /*write_dirty=*/true).ok()) {
      continue;  // stays resident and dirty; referenced gives a second chance
    }
    evicted++;
  }
  stats_.evicted_pages.fetch_add(evicted, std::memory_order_relaxed);
}

void LinuxMmapEngine::WritebackLocked(Vcpu& vcpu, uint64_t max_pages) {
  // Clean from the cold end of the LRU, leaving pages resident.
  uint64_t cleaned = 0;
  for (PageEntry* entry : global_lru_) {
    if (cleaned >= max_pages || dirty_pages_ == 0) {
      break;
    }
    if (!entry->dirty) {
      continue;
    }
    entry->owner->tree_lock_.Acquire(vcpu.clock(), CostCategory::kCacheMgmt,
                                     options_.tree_lock_cycles);
    const uint8_t* data = entry->data;
    uint64_t offset = entry->file_page * kPageSize;
    Status status = entry->owner->backing_->WritePages(
        vcpu, std::span<const uint64_t>(&offset, 1), std::span<const uint8_t* const>(&data, 1),
        kPageSize);
    if (!status.ok()) {
      // Leave the page dirty and stop cleaning this round; the page stays
      // in the cache and msync will surface the error to the application.
      stats_.writeback_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    entry->dirty = false;
    entry->owner->writable_.erase(entry->file_page);
    dirty_pages_--;
    cleaned++;
    stats_.writeback_pages.fetch_add(1, std::memory_order_relaxed);
  }
}

LinuxMap::LinuxMap(LinuxMmapEngine* engine, Backing* backing, uint64_t length, int prot)
    : engine_(engine), backing_(backing), length_(length), prot_(prot) {}

LinuxMap::~LinuxMap() {
  Vcpu& vcpu = ThisVcpu();
  std::lock_guard<std::mutex> guard(engine_->mu_);
  while (!pages_.empty()) {
    PageEntry* entry = pages_.begin()->second;
    if (!engine_->DropEntryLocked(vcpu, entry, /*write_dirty=*/true).ok()) {
      // The mapping is going away: the dirty data has nowhere to live, so
      // drop it without writeback (matching munmap after EIO) rather than
      // spinning on a dead device.
      AQUILA_LOG(WARN, "munmap: dropping dirty page %llu after writeback failure",
                 static_cast<unsigned long long>(entry->file_page));
      (void)engine_->DropEntryLocked(vcpu, entry, /*write_dirty=*/false);
    }
  }
}

StatusOr<LinuxMap::PageEntry*> LinuxMap::ResolveLocked(Vcpu& vcpu, uint64_t file_page,
                                                       bool write, bool* faulted) {
  const LinuxMmapEngine::Options& options = engine_->options_;
  auto it = pages_.find(file_page);
  if (it != pages_.end()) {
    PageEntry* entry = it->second;
    if (write && writable_.count(file_page) == 0) {
      // Dirty-marking fault: trap + tree lock (the lock is required to mark
      // a page dirty, §6.5).
      *faulted = true;
      vcpu.ChargeRing3Trap();
      vcpu.clock().Charge(CostCategory::kTrap, GlobalCostModel().kernel_fault_path);
      tree_lock_.Acquire(vcpu.clock(), CostCategory::kDirtyTracking,
                         options.dirty_mark_cycles);
      if (!entry->dirty) {
        entry->dirty = true;
        engine_->dirty_pages_++;
      }
      writable_.insert(file_page);
      engine_->stats_.dirty_marks.fetch_add(1, std::memory_order_relaxed);
    } else {
      *faulted = false;
    }
    engine_->TouchLruLocked(entry);
    return entry;
  }

  // Major fault.
  *faulted = true;
  vcpu.ChargeRing3Trap();
  vcpu.clock().Charge(CostCategory::kTrap, GlobalCostModel().kernel_fault_path);
  tree_lock_.Acquire(vcpu.clock(), CostCategory::kCacheMgmt, options.tree_lock_cycles);

  // Aggressive writeback kicks in on the fault path once dirty pages exceed
  // the ratio (the stalls Tucana observed, §7.2).
  if (options.aggressive_writeback &&
      engine_->dirty_pages_ * 256 > options.dirty_ratio_256 * options.cache_pages) {
    engine_->WritebackLocked(vcpu, 64);
  }

  // Fault read-ahead: Linux reads a 128 KB cluster around the miss.
  uint64_t map_pages = AlignUp(length_, kPageSize) / kPageSize;
  uint64_t window = 1;
  if (advice_ != Advice::kRandom) {
    window = std::max<uint32_t>(1, options.readahead_pages);
  }
  uint64_t last = std::min(file_page + window, map_pages);

  std::vector<uint64_t> offsets;
  std::vector<uint8_t*> buffers;
  std::vector<PageEntry*> fresh;
  for (uint64_t p = file_page; p < last; p++) {
    if (pages_.count(p) != 0) {
      continue;
    }
    if ((p + 1) * kPageSize > backing_->size_bytes()) {
      break;
    }
    uint8_t* data = engine_->AllocPageLocked(vcpu);
    if (data == nullptr) {
      if (p == file_page) {
        return Status::OutOfSpace("page cache exhausted and nothing evictable");
      }
      break;
    }
    auto* entry = new PageEntry();
    entry->owner = this;
    entry->file_page = p;
    entry->data = data;
    entry->referenced = true;
    engine_->global_lru_.push_back(entry);
    entry->lru_pos = std::prev(engine_->global_lru_.end());
    pages_[p] = entry;
    engine_->resident_pages_++;
    offsets.push_back(p * kPageSize);
    buffers.push_back(data);
    fresh.push_back(entry);
  }
  if (fresh.empty()) {
    // The faulting page itself lies beyond the end of the file: Linux
    // delivers SIGBUS for such accesses. Callers see it as an I/O error.
    return Status::IoError("mmap access beyond end of file (SIGBUS)");
  }
  Status status = backing_->ReadPages(vcpu, offsets, buffers, kPageSize);
  if (!status.ok()) {
    for (PageEntry* entry : fresh) {
      (void)engine_->DropEntryLocked(vcpu, entry, false);
    }
    return status;
  }
  engine_->stats_.major_faults.fetch_add(1, std::memory_order_relaxed);
  if (fresh.size() > 1) {
    engine_->stats_.readahead_pages.fetch_add(fresh.size() - 1, std::memory_order_relaxed);
  }

  PageEntry* entry = pages_[file_page];
  if (write) {
    tree_lock_.Acquire(vcpu.clock(), CostCategory::kDirtyTracking, options.dirty_mark_cycles);
    entry->dirty = true;
    engine_->dirty_pages_++;
    writable_.insert(file_page);
    engine_->stats_.dirty_marks.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

Status LinuxMap::Read(uint64_t offset, std::span<uint8_t> dst) {
  if (offset + dst.size() > length_) {
    return Status::InvalidArgument("read beyond mapping");
  }
  Vcpu& vcpu = ThisVcpu();
  uint64_t done = 0;
  while (done < dst.size()) {
    uint64_t in_page = (offset + done) % kPageSize;
    uint64_t run = std::min<uint64_t>(dst.size() - done, kPageSize - in_page);
    bool faulted;
    std::lock_guard<std::mutex> guard(engine_->mu_);
    StatusOr<PageEntry*> entry = ResolveLocked(vcpu, (offset + done) >> kPageShift,
                                               /*write=*/false, &faulted);
    if (!entry.ok()) {
      return entry.status();
    }
    std::memcpy(dst.data() + done, (*entry)->data + in_page, run);
    done += run;
  }
  return Status::Ok();
}

Status LinuxMap::Write(uint64_t offset, std::span<const uint8_t> src) {
  if (offset + src.size() > length_) {
    return Status::InvalidArgument("write beyond mapping");
  }
  if ((prot_ & kProtWrite) == 0) {
    return Status::FailedPrecondition("write to read-only mapping");
  }
  Vcpu& vcpu = ThisVcpu();
  uint64_t done = 0;
  while (done < src.size()) {
    uint64_t in_page = (offset + done) % kPageSize;
    uint64_t run = std::min<uint64_t>(src.size() - done, kPageSize - in_page);
    bool faulted;
    std::lock_guard<std::mutex> guard(engine_->mu_);
    StatusOr<PageEntry*> entry = ResolveLocked(vcpu, (offset + done) >> kPageShift,
                                               /*write=*/true, &faulted);
    if (!entry.ok()) {
      return entry.status();
    }
    std::memcpy((*entry)->data + in_page, src.data() + done, run);
    done += run;
  }
  return Status::Ok();
}

AccessResult LinuxMap::TouchRead(uint64_t offset) {
  AQUILA_CHECK(offset < length_);
  Vcpu& vcpu = ThisVcpu();
  bool faulted;
  std::lock_guard<std::mutex> guard(engine_->mu_);
  StatusOr<PageEntry*> entry = ResolveLocked(vcpu, offset >> kPageShift, false, &faulted);
  if (!entry.ok()) {
    return AccessResult{/*faulted=*/false, entry.status()};
  }
  volatile uint8_t sink = (*entry)->data[offset % kPageSize];
  (void)sink;
  return AccessResult{faulted, Status::Ok()};
}

AccessResult LinuxMap::TouchWrite(uint64_t offset) {
  AQUILA_CHECK(offset < length_);
  AQUILA_CHECK((prot_ & kProtWrite) != 0);
  Vcpu& vcpu = ThisVcpu();
  bool faulted;
  std::lock_guard<std::mutex> guard(engine_->mu_);
  StatusOr<PageEntry*> entry = ResolveLocked(vcpu, offset >> kPageShift, true, &faulted);
  if (!entry.ok()) {
    return AccessResult{/*faulted=*/false, entry.status()};
  }
  (*entry)->data[offset % kPageSize]++;
  return AccessResult{faulted, Status::Ok()};
}

Status LinuxMap::Sync(uint64_t offset, uint64_t length) {
  Vcpu& vcpu = ThisVcpu();
  vcpu.ChargeSyscall();
  uint64_t first = offset >> kPageShift;
  uint64_t last = (offset + length - 1) >> kPageShift;
  std::lock_guard<std::mutex> guard(engine_->mu_);
  // Collect and sort by file offset (Linux writeback clusters by offset).
  std::vector<PageEntry*> dirty;
  for (auto& [page, entry] : pages_) {
    if (entry->dirty && page >= first && page <= last) {
      dirty.push_back(entry);
    }
  }
  std::sort(dirty.begin(), dirty.end(),
            [](PageEntry* a, PageEntry* b) { return a->file_page < b->file_page; });
  std::vector<uint64_t> offsets;
  std::vector<const uint8_t*> buffers;
  for (PageEntry* entry : dirty) {
    tree_lock_.Acquire(vcpu.clock(), CostCategory::kDirtyTracking,
                       engine_->options_.dirty_mark_cycles);
    entry->dirty = false;
    writable_.erase(entry->file_page);
    engine_->dirty_pages_--;
    offsets.push_back(entry->file_page * kPageSize);
    buffers.push_back(entry->data);
  }
  if (!offsets.empty()) {
    Status status = backing_->WritePages(vcpu, offsets, buffers, kPageSize);
    if (!status.ok()) {
      // msync failed: nothing was acknowledged. Re-mark the pages dirty so
      // the data survives for a retry, then report the EIO.
      engine_->stats_.writeback_errors.fetch_add(1, std::memory_order_relaxed);
      for (PageEntry* entry : dirty) {
        if (!entry->dirty) {
          entry->dirty = true;
          engine_->dirty_pages_++;
        }
      }
      return status;
    }
    engine_->stats_.writeback_pages.fetch_add(offsets.size(), std::memory_order_relaxed);
  }
  return backing_->Flush(vcpu);
}

Status LinuxMap::Advise(uint64_t offset, uint64_t length, Advice advice) {
  Vcpu& vcpu = ThisVcpu();
  vcpu.ChargeSyscall();
  switch (advice) {
    case Advice::kNormal:
    case Advice::kRandom:
    case Advice::kSequential:
      advice_ = advice;
      return Status::Ok();
    case Advice::kWillNeed: {
      uint64_t first = offset >> kPageShift;
      uint64_t last = (offset + length - 1) >> kPageShift;
      std::lock_guard<std::mutex> guard(engine_->mu_);
      for (uint64_t p = first; p <= last && p * kPageSize < length_; p++) {
        bool faulted;
        StatusOr<PageEntry*> entry = ResolveLocked(vcpu, p, false, &faulted);
        if (!entry.ok()) {
          return entry.status();
        }
      }
      return Status::Ok();
    }
    case Advice::kDontNeed: {
      uint64_t first = offset >> kPageShift;
      uint64_t last = (offset + length - 1) >> kPageShift;
      std::lock_guard<std::mutex> guard(engine_->mu_);
      std::vector<PageEntry*> victims;
      for (auto& [page, entry] : pages_) {
        if (page >= first && page <= last) {
          victims.push_back(entry);
        }
      }
      Status result = Status::Ok();
      for (PageEntry* entry : victims) {
        Status status = engine_->DropEntryLocked(vcpu, entry, /*write_dirty=*/true);
        if (!status.ok() && result.ok()) {
          result = status;  // failed pages stay cached; report the first EIO
        }
      }
      return result;
    }
  }
  return Status::InvalidArgument("unknown advice");
}

}  // namespace aquila
