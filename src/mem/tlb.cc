#include "src/mem/tlb.h"

#include <vector>

#include "src/telemetry/metrics.h"
#include "src/telemetry/scoped_timer.h"
#include "src/util/logging.h"
#include "src/util/race_injector.h"
#include "src/vmx/cost_model.h"

namespace aquila {

TlbSet::LookupResult TlbSet::Lookup(int core, uint64_t vpn) const {
  uint64_t packed = cores_[core].entries[SlotFor(vpn)].load(std::memory_order_relaxed);
  if ((packed & 1u) != 0 && (packed >> 2) == vpn) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return LookupResult{true, (packed & 2u) != 0};
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return LookupResult{false, false};
}

uint64_t TlbSet::Insert(int core, uint64_t vpn, bool writable, uint32_t frame) {
  // Read the epoch BEFORE publishing the entry: a FlushCore racing in
  // between wipes the slot we are about to fill, and the stale entry we then
  // store is exactly what the pre-flush epoch admits — the frame's CAS-max
  // keeps the insert visible to the generation check, so the shootdown still
  // targets this core. The reverse order could stamp a post-flush epoch on
  // an entry the flush missed, eliding an IPI the core still needs.
  uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  AQUILA_RACE_POINT("tlb.insert.pre_store");
  // Payload before entry word so a quiesced reader that sees the entry sees
  // its frame; mid-flight the pair is best-effort by design.
  cores_[core].frames[SlotFor(vpn)].store(frame, std::memory_order_relaxed);
  cores_[core].entries[SlotFor(vpn)].store(Pack(vpn, writable), std::memory_order_relaxed);
  return epoch;
}

TlbSet::EntrySnapshot TlbSet::ReadEntryForTest(int core, int slot) const {
  EntrySnapshot snap;
  uint64_t packed = cores_[core].entries[slot].load(std::memory_order_relaxed);
  if ((packed & 1u) == 0) {
    return snap;
  }
  snap.valid = true;
  snap.writable = (packed & 2u) != 0;
  snap.vpn = packed >> 2;
  snap.frame = cores_[core].frames[slot].load(std::memory_order_relaxed);
  return snap;
}

void TlbSet::InvalidatePage(int core, uint64_t vpn) {
  std::atomic<uint64_t>& slot = cores_[core].entries[SlotFor(vpn)];
  uint64_t packed = slot.load(std::memory_order_relaxed);
  AQUILA_RACE_POINT("tlb.invalidate.pre_store");
  if ((packed & 1u) != 0 && (packed >> 2) == vpn) {
    slot.store(0, std::memory_order_relaxed);
  }
}

void TlbSet::FlushCore(int core) {
  for (auto& slot : cores_[core].entries) {
    slot.store(0, std::memory_order_relaxed);
  }
  // Epoch advances strictly after the wipe: an entry inserted mid-wipe
  // carries the pre-bump epoch, so the generation check (strict >) still
  // sends this core an IPI for it. CAS-max because two concurrent flushes of
  // the same core may publish out of order — the epoch must never go
  // backwards (understating the flush point is conservative: at worst an
  // elidable IPI is sent anyway).
  uint64_t flushed_at = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  AQUILA_RACE_POINT("tlb.flush.pre_epoch_publish");
  std::atomic<uint64_t>& mark = flush_epochs_[core].flushed;
  uint64_t seen = mark.load(std::memory_order_relaxed);
  while (seen < flushed_at &&
         !mark.compare_exchange_weak(seen, flushed_at, std::memory_order_relaxed)) {
  }
}

bool TlbSet::CoreNeedsPage(int core, const PageShootdown& page,
                           ShootdownMaskMode mode) const {
  if (mode == ShootdownMaskMode::kBroadcast) {
    return true;
  }
  if ((page.cpu_mask & (1ull << (core & 63))) == 0) {
    return false;  // core never installed a translation for this page
  }
  if ((mode == ShootdownMaskMode::kMaskGen || mode == ShootdownMaskMode::kReuseElide) &&
      flush_epochs_[core].flushed.load(std::memory_order_relaxed) > page.tlb_epoch) {
    return false;  // whole TLB flushed since the page's last insert
  }
  return true;
}

void TlbSet::Shootdown(SimClock& clock, int initiator_core, int active_cores,
                       std::span<const uint64_t> vpns, PostedIpiFabric& fabric) {
  std::vector<PageShootdown> pages(vpns.size());
  for (size_t i = 0; i < vpns.size(); i++) {
    pages[i].vpn = vpns[i];  // default mask/epoch: all cores, never flushed
  }
  Shootdown(clock, initiator_core, active_cores, pages, fabric,
            ShootdownMaskMode::kBroadcast);
}

void TlbSet::Shootdown(SimClock& clock, int initiator_core, int active_cores,
                       std::span<const PageShootdown> pages, PostedIpiFabric& fabric,
                       ShootdownMaskMode mode) {
  if (pages.empty()) {
    return;  // no IPIs, no counters, no histogram sample for an empty batch
  }
  if (active_cores > CoreRegistry::kMaxCores) {
    active_cores = CoreRegistry::kMaxCores;
  }
#ifndef NDEBUG
  // A capture must never carry an epoch from the future: tlb_epoch is read
  // off a frame the caller owns (claim and/or entry lock), so an epoch
  // beyond the current global epoch means the capture raced a free/recycle
  // (capture-after-free) and would silently over-elide under kMaskGen and
  // kReuseElide. The broadcast default (~0) is the documented exception.
  const uint64_t now_epoch = CurrentEpoch();
  for (const PageShootdown& page : pages) {
    AQUILA_DCHECK(page.tlb_epoch == ~0ull || page.tlb_epoch <= now_epoch);
  }
#endif
  const CostModel& costs = GlobalCostModel();
  shootdowns_.fetch_add(1, std::memory_order_relaxed);
#if AQUILA_TELEMETRY_ENABLED
  static Histogram* shootdown_hist =
      telemetry::Registry().GetHistogram("aquila.tlb.shootdown_cycles");
  static telemetry::Counter* shootdown_pages =
      telemetry::Registry().GetCounter("aquila.tlb.shootdown_pages");
  shootdown_pages->Add(pages.size());
  const uint64_t start_cycles = clock.Now();
#endif

  // Initiator phase: the whole batch is invalidated locally (the initiator
  // removed the PTEs; its own TLB must not outlive them). A batch whose
  // per-page cost exceeds one full flush is applied as a flush so the
  // simulated TLB state matches the charged cost.
  uint64_t local_cost = pages.size() * costs.tlb_invalidate_page;
  if (local_cost > costs.tlb_full_flush) {
    local_cost = costs.tlb_full_flush;
    FlushCore(initiator_core);
  } else {
    for (const PageShootdown& page : pages) {
      InvalidatePage(initiator_core, page.vpn);
    }
  }
  clock.Charge(CostCategory::kTlbShootdown, local_cost);

  // Remote phase: one coalesced IPI per victim core, covering only the batch
  // pages whose mask (and, under kMaskGen, flush generation) name it. Cores
  // with no surviving page are elided entirely.
  bool any_remote = false;
  for (int core = 0; core < active_cores; core++) {
    if (core == initiator_core) {
      continue;
    }
    size_t count = 0;
    for (const PageShootdown& page : pages) {
      if (CoreNeedsPage(core, page, mode)) {
        count++;
      }
    }
    if (count == 0) {
      ipis_elided_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    any_remote = true;
    uint64_t handler_cost = count * costs.tlb_invalidate_page;
    if (handler_cost > costs.tlb_full_flush) {
      handler_cost = costs.tlb_full_flush;
      // The victim's handler resolves the clamped batch as one full flush —
      // which also advances its flush epoch, feeding the kMaskGen elision
      // for every page it still holds.
      FlushCore(core);
    } else {
      for (const PageShootdown& page : pages) {
        if (CoreNeedsPage(core, page, mode)) {
          InvalidatePage(core, page.vpn);
        }
      }
    }
    AQUILA_RACE_POINT("tlb.shootdown.pre_send");
    fabric.Send(clock, core, handler_cost);
    ipis_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!any_remote) {
    shootdowns_local_.fetch_add(1, std::memory_order_relaxed);
  }
#if AQUILA_TELEMETRY_ENABLED
  telemetry::RecordSpanSince(shootdown_hist, telemetry::TraceEventType::kShootdown, clock,
                             start_cycles, pages.size());
#endif
}

void TlbSet::Defer(const DeferredShootdown& d) {
  DeferredShard& shard = ShardFor(d.vpn);
  std::lock_guard<SpinLock> guard(shard.lock);
  auto [it, inserted] = shard.entries.insert_or_assign(d.vpn, d);
  (void)it;
  // At most one deferral per vpn can be live: the page must be refaulted
  // before it can be evicted again, and the refault Takes the entry.
  AQUILA_DCHECK(inserted);
  if (inserted) {
    deferred_pending_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool TlbSet::TakeDeferred(uint64_t vpn, DeferredShootdown* out) {
  DeferredShard& shard = ShardFor(vpn);
  std::lock_guard<SpinLock> guard(shard.lock);
  auto it = shard.entries.find(vpn);
  if (it == shard.entries.end()) {
    return false;
  }
  if (out != nullptr) {
    *out = it->second;
  }
  shard.entries.erase(it);
  deferred_pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool TlbSet::PeekDeferred(uint64_t vpn, DeferredShootdown* out) const {
  const DeferredShard& shard = ShardFor(vpn);
  std::lock_guard<SpinLock> guard(shard.lock);
  auto it = shard.entries.find(vpn);
  if (it == shard.entries.end()) {
    return false;
  }
  if (out != nullptr) {
    *out = it->second;
  }
  return true;
}

void TlbSet::DrainDeferredRegion(uint64_t region, std::vector<PageShootdown>* out) {
  for (DeferredShard& shard : deferred_) {
    std::lock_guard<SpinLock> guard(shard.lock);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->second.region == region) {
        if (out != nullptr) {
          out->push_back(PageShootdown{it->second.vpn, it->second.cpu_mask,
                                       it->second.tlb_epoch});
        }
        it = shard.entries.erase(it);
        deferred_pending_.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

void TlbSet::ExecuteDeferred(SimClock& clock, int initiator_core, int active_cores,
                             const DeferredShootdown& d, PostedIpiFabric& fabric) {
  if (active_cores > CoreRegistry::kMaxCores) {
    active_cores = CoreRegistry::kMaxCores;
  }
#ifndef NDEBUG
  // Same capture-after-free guard as the batched overload (satellite rule):
  // a deferred epoch newer than the global epoch would over-elide below.
  AQUILA_DCHECK(d.tlb_epoch == ~0ull || d.tlb_epoch <= CurrentEpoch());
#endif
  const CostModel& costs = GlobalCostModel();
  shootdowns_.fetch_add(1, std::memory_order_relaxed);
  const PageShootdown page{d.vpn, d.cpu_mask, d.tlb_epoch};
  bool any_remote = false;
  for (int core = 0; core < active_cores; core++) {
    // The executing core is mask/gen-elided like any other: the deferral's
    // PTE was removed when it was captured, so — unlike the batched
    // initiator phase — there is no freshly removed local translation to
    // protect here.
    if (!CoreNeedsPage(core, page, ShootdownMaskMode::kMaskGen)) {
      if (core != initiator_core) {
        ipis_elided_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    // Debt escalation: single-page executes lose the batch clamp's
    // amortization, so once a core has accrued one full flush worth of
    // page invalidations we flush it instead — advancing its epoch so the
    // backlog of other deferrals gen-elides it from then on.
    uint32_t debt = deferred_debt_[core].pages.fetch_add(1, std::memory_order_relaxed) + 1;
    const bool upgrade = debt * costs.tlb_invalidate_page >= costs.tlb_full_flush;
    uint64_t handler_cost = costs.tlb_invalidate_page;
    if (upgrade) {
      handler_cost = costs.tlb_full_flush;
      deferred_debt_[core].pages.store(0, std::memory_order_relaxed);
      FlushCore(core);
    } else {
      InvalidatePage(core, d.vpn);
    }
    if (core == initiator_core) {
      clock.Charge(CostCategory::kTlbShootdown, handler_cost);
    } else {
      any_remote = true;
      AQUILA_RACE_POINT("tlb.shootdown.pre_send");
      fabric.Send(clock, core, handler_cost);
      ipis_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!any_remote) {
    shootdowns_local_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace aquila
