#include "src/mem/tlb.h"

#include "src/telemetry/metrics.h"
#include "src/telemetry/scoped_timer.h"
#include "src/util/race_injector.h"
#include "src/vmx/cost_model.h"

namespace aquila {

TlbSet::LookupResult TlbSet::Lookup(int core, uint64_t vpn) const {
  uint64_t packed = cores_[core].entries[SlotFor(vpn)].load(std::memory_order_relaxed);
  if ((packed & 1u) != 0 && (packed >> 2) == vpn) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return LookupResult{true, (packed & 2u) != 0};
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return LookupResult{false, false};
}

void TlbSet::Insert(int core, uint64_t vpn, bool writable) {
  AQUILA_RACE_POINT("tlb.insert.pre_store");
  cores_[core].entries[SlotFor(vpn)].store(Pack(vpn, writable), std::memory_order_relaxed);
}

void TlbSet::InvalidatePage(int core, uint64_t vpn) {
  std::atomic<uint64_t>& slot = cores_[core].entries[SlotFor(vpn)];
  uint64_t packed = slot.load(std::memory_order_relaxed);
  AQUILA_RACE_POINT("tlb.invalidate.pre_store");
  if ((packed & 1u) != 0 && (packed >> 2) == vpn) {
    slot.store(0, std::memory_order_relaxed);
  }
}

void TlbSet::FlushCore(int core) {
  for (auto& slot : cores_[core].entries) {
    slot.store(0, std::memory_order_relaxed);
  }
}

void TlbSet::Shootdown(SimClock& clock, int initiator_core, int active_cores,
                       std::span<const uint64_t> vpns, PostedIpiFabric& fabric) {
  const CostModel& costs = GlobalCostModel();
  shootdowns_.fetch_add(1, std::memory_order_relaxed);
#if AQUILA_TELEMETRY_ENABLED
  static Histogram* shootdown_hist =
      telemetry::Registry().GetHistogram("aquila.tlb.shootdown_cycles");
  static telemetry::Counter* shootdown_pages =
      telemetry::Registry().GetCounter("aquila.tlb.shootdown_pages");
  shootdown_pages->Add(vpns.size());
  const uint64_t start_cycles = clock.Now();
#endif

  if (active_cores > CoreRegistry::kMaxCores) {
    active_cores = CoreRegistry::kMaxCores;
  }

  // The handler on every core (initiator included) invalidates the batch; a
  // large batch is cheaper as a full flush.
  uint64_t per_core_cost = vpns.size() * costs.tlb_invalidate_page;
  if (per_core_cost > costs.tlb_full_flush) {
    per_core_cost = costs.tlb_full_flush;
  }

  for (int core = 0; core < active_cores; core++) {
    for (uint64_t vpn : vpns) {
      InvalidatePage(core, vpn);
    }
    if (core == initiator_core) {
      clock.Charge(CostCategory::kTlbShootdown, per_core_cost);
    } else {
      fabric.Send(clock, core, per_core_cost);
    }
  }
#if AQUILA_TELEMETRY_ENABLED
  telemetry::RecordSpanSince(shootdown_hist, telemetry::TraceEventType::kShootdown, clock,
                             start_cycles, vpns.size());
#endif
}

}  // namespace aquila
