// Per-core software TLBs with batched shootdown (§3.1, §4.1).
//
// The TLBs are *statistical*: translations are always re-validated against
// the page table (whose PTE dirty/present bits are authoritative), so a
// stale TLB entry can only mis-account a hit as such — it can never corrupt
// data. This mirrors the role the real TLB plays for the paper's accounting:
// hits are free, misses pay the hardware walk, and invalidations cost IPIs.
//
// Shootdown protocol (Aquila): the initiator removes a batch of PTEs, then
// invalidates the batch locally and sends ONE IPI per remote core for the
// whole batch through the posted-IPI fabric (vmexit-protected send path,
// §4.1). The remote handler cost scales with the batch size and is charged
// to the victim core's mailbox.
#ifndef AQUILA_SRC_MEM_TLB_H_
#define AQUILA_SRC_MEM_TLB_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <span>

#include "src/util/cpu.h"
#include "src/util/sim_clock.h"
#include "src/vmx/ipi.h"

namespace aquila {

class TlbSet {
 public:
  // Entries per core. Direct-mapped; sized like a big L2 STLB.
  static constexpr int kEntries = 2048;

  struct LookupResult {
    bool hit = false;
    bool writable = false;
  };

  // Statistical lookup for virtual page number `vpn` on `core`.
  LookupResult Lookup(int core, uint64_t vpn) const;

  // Fills the entry after a walk. `writable` caches the PTE W bit.
  void Insert(int core, uint64_t vpn, bool writable);

  // Local single-page invalidation (invlpg analog).
  void InvalidatePage(int core, uint64_t vpn);

  // Drops every entry on `core`.
  void FlushCore(int core);

  // Invalidates `vpns` on all cores. The initiator (`initiator_core`, whose
  // clock is `clock`) pays per-page local invalidations plus one IPI per
  // remote core; each remote core is charged the handler cost via the
  // fabric. `active_cores` bounds the shootdown fan-out (the paper tracks
  // which cores may cache the mapping via the shared page table).
  void Shootdown(SimClock& clock, int initiator_core, int active_cores,
                 std::span<const uint64_t> vpns, PostedIpiFabric& fabric);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t shootdowns() const { return shootdowns_.load(std::memory_order_relaxed); }

 private:
  // Packed entry: (vpn << 2) | (writable << 1) | valid. vpn of ~0 unused.
  static uint64_t Pack(uint64_t vpn, bool writable) {
    return (vpn << 2) | (writable ? 2u : 0u) | 1u;
  }

  struct alignas(kCacheLineSize) CoreTlb {
    std::array<std::atomic<uint64_t>, kEntries> entries{};
  };

  static int SlotFor(uint64_t vpn) { return static_cast<int>(vpn) & (kEntries - 1); }

  std::array<CoreTlb, CoreRegistry::kMaxCores> cores_{};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> shootdowns_{0};
};

}  // namespace aquila

#endif  // AQUILA_SRC_MEM_TLB_H_
