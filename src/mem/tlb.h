// Per-core software TLBs with batched, core-mask-tracked shootdown
// (§3.1, §4.1; fan-out model in DESIGN.md §10).
//
// The TLBs are *statistical*: translations are always re-validated against
// the page table (whose PTE dirty/present bits are authoritative), so a
// stale TLB entry can only mis-account a hit as such — it can never corrupt
// data. This mirrors the role the real TLB plays for the paper's accounting:
// hits are free, misses pay the hardware walk, and invalidations cost IPIs.
//
// Shootdown protocol (Aquila): the initiator removes a batch of PTEs, then
// invalidates the batch locally and sends ONE IPI per remote core for the
// whole batch through the posted-IPI fabric (vmexit-protected send path,
// §4.1). The remote handler cost scales with the batch size and is charged
// to the victim core's mailbox.
//
// Fan-out reduction (mm_cpumask analog): each cache frame tracks the set of
// cores that installed a translation for it (Frame::cpu_mask) plus the
// global flush epoch at its last insert (Frame::tlb_epoch). The masked
// Shootdown overload uses both to shrink the IPI fan-out from
// O(active_cores) to O(cores-that-mapped-it):
//   - a core with no bit in any page of the batch is skipped entirely;
//   - with ShootdownMaskMode::kMaskGen, a core whose whole TLB was flushed
//     after a page's last insert is skipped for that page (the reused-pages
//     elision; see PAPERS.md "Skip TLB flushes for reused pages");
//   - when every surviving target is the initiator itself, the remote phase
//     is fully elided (the common case for private streams).
// Both the mask and the epoch are conservative under races (an insert
// racing a concurrent flush or shootdown may leave a stale-but-benign entry
// behind); because the TLB is statistical, the failure mode is a
// mis-accounted hit, never corruption — see DESIGN.md §10.
#ifndef AQUILA_SRC_MEM_TLB_H_
#define AQUILA_SRC_MEM_TLB_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/util/cpu.h"
#include "src/util/sim_clock.h"
#include "src/util/spinlock.h"
#include "src/vmx/ipi.h"

namespace aquila {

// How Shootdown picks its IPI targets (Options::shootdown_mask_mode).
enum class ShootdownMaskMode : uint8_t {
  kBroadcast,   // one IPI per active core, the paper's §4.1 baseline
  kMask,        // skip cores with no bit in the batch's per-page cpu masks
  kMaskGen,     // kMask, plus skip cores fully flushed since a page's insert
  kReuseElide,  // kMaskGen, plus defer the flush for clean recycled frames:
                // the fault path elides it entirely on same-owner reuse and
                // executes it (debt-amortized) on a cross-owner handout
};

// A shootdown whose execution was deferred at frame-recycle time under
// kReuseElide (DESIGN.md §10): a clean page's routing state, keyed by vpn,
// parked until the frame's next allocation decides elide-vs-execute. `frame`
// is the owning cache frame id, kept as a raw u32 because src/mem cannot
// depend on src/cache types.
struct DeferredShootdown {
  uint64_t vpn = 0;
  uint64_t region = 0;  // owning mapping id at capture time
  uint32_t frame = 0;
  uint64_t cpu_mask = 0;
  uint64_t tlb_epoch = 0;
};

// One page of a masked shootdown batch: the vpn to invalidate plus the
// routing state captured from the owning frame while the caller held its
// claim. The defaults (all cores, never-flushed) make an entry equivalent to
// a broadcast shootdown of that page.
struct PageShootdown {
  uint64_t vpn = 0;
  uint64_t cpu_mask = ~0ull;   // cores whose TLB may cache this translation
  uint64_t tlb_epoch = ~0ull;  // global flush epoch at the page's last insert
};

class TlbSet {
 public:
  // Entries per core. Direct-mapped; sized like a big L2 STLB.
  static constexpr int kEntries = 2048;

  struct LookupResult {
    bool hit = false;
    bool writable = false;
  };

  // Statistical lookup for virtual page number `vpn` on `core`.
  LookupResult Lookup(int core, uint64_t vpn) const;

  // Sentinel for the per-entry frame payload: "no frame recorded".
  static constexpr uint32_t kNoFramePayload = ~0u;

  // Fills the entry after a walk. `writable` caches the PTE W bit. `frame`
  // is an optional best-effort payload (the cache frame id backing the
  // translation) used by the stale-translation detector; it rides a parallel
  // relaxed array, so it is exact only at quiesce. Returns the current
  // global flush epoch so the caller can stamp the owning frame's tlb_epoch
  // (the kMaskGen elision input).
  uint64_t Insert(int core, uint64_t vpn, bool writable,
                  uint32_t frame = kNoFramePayload);

  // Local single-page invalidation (invlpg analog).
  void InvalidatePage(int core, uint64_t vpn);

  // Drops every entry on `core` and advances its flush epoch: pages whose
  // last insert predates the flush need no IPI to this core afterwards.
  void FlushCore(int core);

  // Broadcast compatibility wrapper: invalidates `vpns` on all active cores
  // exactly like a masked shootdown whose every page carries the default
  // (all-ones) mask.
  void Shootdown(SimClock& clock, int initiator_core, int active_cores,
                 std::span<const uint64_t> vpns, PostedIpiFabric& fabric);

  // Masked batched shootdown. The initiator (`initiator_core`, whose clock
  // is `clock`) always invalidates the whole batch locally and pays for it;
  // each remaining core in [0, active_cores) receives one coalesced IPI
  // covering only the batch pages whose mask names it (per `mode`), charged
  // through the fabric. Cores with no surviving page are elided. A batch
  // whose per-core cost exceeds one full flush is applied as FlushCore on
  // that core (so simulated TLB state matches the charged cost) and bumps
  // its flush epoch. Empty batches are free: no IPI, no histogram sample.
  void Shootdown(SimClock& clock, int initiator_core, int active_cores,
                 std::span<const PageShootdown> pages, PostedIpiFabric& fabric,
                 ShootdownMaskMode mode);

  // Global flush epoch (bumped by every FlushCore) and the epoch at which
  // `core` last had its whole TLB flushed.
  uint64_t CurrentEpoch() const { return epoch_.load(std::memory_order_relaxed); }
  uint64_t CoreFlushEpoch(int core) const {
    return flush_epochs_[core].flushed.load(std::memory_order_relaxed);
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t shootdowns() const { return shootdowns_.load(std::memory_order_relaxed); }
  // Fan-out accounting: IPIs actually sent by shootdowns, remote cores
  // skipped (mask or generation), and shootdowns that stayed fully local.
  uint64_t ipis_sent() const { return ipis_sent_.load(std::memory_order_relaxed); }
  uint64_t ipis_elided() const { return ipis_elided_.load(std::memory_order_relaxed); }
  uint64_t shootdowns_local() const {
    return shootdowns_local_.load(std::memory_order_relaxed);
  }
  // kReuseElide accounting: shootdowns skipped outright because the freed
  // frame returned to its previous (region, vpn) owner, and deferred
  // shootdowns forced to execute because the frame (or vpn) was handed to a
  // different owner first.
  uint64_t reuse_elided() const { return reuse_elided_.load(std::memory_order_relaxed); }
  uint64_t reuse_mismatch() const {
    return reuse_mismatch_.load(std::memory_order_relaxed);
  }
  void NoteReuseElided() { reuse_elided_.fetch_add(1, std::memory_order_relaxed); }
  void NoteReuseMismatch() { reuse_mismatch_.fetch_add(1, std::memory_order_relaxed); }

  // --- Deferred shootdowns (ShootdownMaskMode::kReuseElide) ---------------
  // The table is keyed by vpn; because VaAllocator never recycles virtual
  // ranges, a vpn names one (region, page) incarnation for the process
  // lifetime, so a lookup can never confuse two incarnations.

  // Parks `d` for later elide-or-execute. At most one deferral per vpn can
  // be live (the page must be refaulted before it can be evicted again), so
  // insertion never collides with a live entry.
  void Defer(const DeferredShootdown& d);

  // Removes and returns the deferral for `vpn`, if any.
  bool TakeDeferred(uint64_t vpn, DeferredShootdown* out);

  // Non-destructive lookup for tests/detectors.
  bool PeekDeferred(uint64_t vpn, DeferredShootdown* out) const;

  // Removes every deferral belonging to `region` and appends the equivalent
  // PageShootdown rows to `out` (for a final batched flush at teardown).
  void DrainDeferredRegion(uint64_t region, std::vector<PageShootdown>* out);

  uint64_t deferred_pending() const {
    return deferred_pending_.load(std::memory_order_relaxed);
  }

  // Executes one previously deferred shootdown on a cross-owner handout.
  // Unlike the batched Shootdown, the initiator core is gen/mask-elided too:
  // its PTE was already removed when the deferral was captured, so there is
  // no local translation to protect. Per-core invalidation debt is
  // accumulated and, once it exceeds one full flush, upgraded to FlushCore —
  // restoring the batch-clamp amortization single-page executes would lose.
  void ExecuteDeferred(SimClock& clock, int initiator_core, int active_cores,
                       const DeferredShootdown& d, PostedIpiFabric& fabric);

  // Test/debug snapshot of TLB slot `slot` on `core`, including the frame
  // payload recorded at insert. The loads are relaxed and not mutually
  // atomic; meaningful only at quiesce.
  struct EntrySnapshot {
    bool valid = false;
    bool writable = false;
    uint64_t vpn = 0;
    uint32_t frame = kNoFramePayload;
  };
  EntrySnapshot ReadEntryForTest(int core, int slot) const;

 private:
  // Packed entry: (vpn << 2) | (writable << 1) | valid. vpn of ~0 unused.
  static uint64_t Pack(uint64_t vpn, bool writable) {
    return (vpn << 2) | (writable ? 2u : 0u) | 1u;
  }

  struct alignas(kCacheLineSize) CoreTlb {
    std::array<std::atomic<uint64_t>, kEntries> entries{};
    // Best-effort frame-id payload, parallel to entries (relaxed stores, not
    // atomic with the entry word; exact only at quiesce — detector input).
    std::array<std::atomic<uint32_t>, kEntries> frames{};
  };

  struct alignas(kCacheLineSize) CoreEpoch {
    std::atomic<uint64_t> flushed{0};
  };

  static int SlotFor(uint64_t vpn) { return static_cast<int>(vpn) & (kEntries - 1); }

  // True when `core` must invalidate `page` under `mode`.
  bool CoreNeedsPage(int core, const PageShootdown& page, ShootdownMaskMode mode) const;

  // Deferred-shootdown table shard: vpn → parked shootdown. Sharded to keep
  // the fault-path Take cheap under multi-core churn.
  static constexpr int kDeferredShards = 16;
  struct alignas(kCacheLineSize) DeferredShard {
    mutable SpinLock lock;
    std::unordered_map<uint64_t, DeferredShootdown> entries;  // guarded-by: lock
  };
  DeferredShard& ShardFor(uint64_t vpn) {
    return deferred_[(vpn >> 4) & (kDeferredShards - 1)];
  }
  const DeferredShard& ShardFor(uint64_t vpn) const {
    return deferred_[(vpn >> 4) & (kDeferredShards - 1)];
  }

  // Invalidation debt a core has accrued from single-page deferred executes;
  // upgraded to a full flush once it costs more than one (cost_model).
  struct alignas(kCacheLineSize) DeferredDebt {
    std::atomic<uint32_t> pages{0};
  };

  std::array<CoreTlb, CoreRegistry::kMaxCores> cores_{};
  std::array<CoreEpoch, CoreRegistry::kMaxCores> flush_epochs_{};
  std::array<DeferredShard, kDeferredShards> deferred_{};
  std::array<DeferredDebt, CoreRegistry::kMaxCores> deferred_debt_{};
  std::atomic<uint64_t> deferred_pending_{0};
  std::atomic<uint64_t> epoch_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> shootdowns_{0};
  std::atomic<uint64_t> ipis_sent_{0};
  std::atomic<uint64_t> ipis_elided_{0};
  std::atomic<uint64_t> shootdowns_local_{0};
  std::atomic<uint64_t> reuse_elided_{0};
  std::atomic<uint64_t> reuse_mismatch_{0};
};

}  // namespace aquila

#endif  // AQUILA_SRC_MEM_TLB_H_
