// Per-core software TLBs with batched, core-mask-tracked shootdown
// (§3.1, §4.1; fan-out model in DESIGN.md §10).
//
// The TLBs are *statistical*: translations are always re-validated against
// the page table (whose PTE dirty/present bits are authoritative), so a
// stale TLB entry can only mis-account a hit as such — it can never corrupt
// data. This mirrors the role the real TLB plays for the paper's accounting:
// hits are free, misses pay the hardware walk, and invalidations cost IPIs.
//
// Shootdown protocol (Aquila): the initiator removes a batch of PTEs, then
// invalidates the batch locally and sends ONE IPI per remote core for the
// whole batch through the posted-IPI fabric (vmexit-protected send path,
// §4.1). The remote handler cost scales with the batch size and is charged
// to the victim core's mailbox.
//
// Fan-out reduction (mm_cpumask analog): each cache frame tracks the set of
// cores that installed a translation for it (Frame::cpu_mask) plus the
// global flush epoch at its last insert (Frame::tlb_epoch). The masked
// Shootdown overload uses both to shrink the IPI fan-out from
// O(active_cores) to O(cores-that-mapped-it):
//   - a core with no bit in any page of the batch is skipped entirely;
//   - with ShootdownMaskMode::kMaskGen, a core whose whole TLB was flushed
//     after a page's last insert is skipped for that page (the reused-pages
//     elision; see PAPERS.md "Skip TLB flushes for reused pages");
//   - when every surviving target is the initiator itself, the remote phase
//     is fully elided (the common case for private streams).
// Both the mask and the epoch are conservative under races (an insert
// racing a concurrent flush or shootdown may leave a stale-but-benign entry
// behind); because the TLB is statistical, the failure mode is a
// mis-accounted hit, never corruption — see DESIGN.md §10.
#ifndef AQUILA_SRC_MEM_TLB_H_
#define AQUILA_SRC_MEM_TLB_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <span>

#include "src/util/cpu.h"
#include "src/util/sim_clock.h"
#include "src/vmx/ipi.h"

namespace aquila {

// How Shootdown picks its IPI targets (Options::shootdown_mask_mode).
enum class ShootdownMaskMode : uint8_t {
  kBroadcast,  // one IPI per active core, the paper's §4.1 baseline
  kMask,       // skip cores with no bit in the batch's per-page cpu masks
  kMaskGen,    // kMask, plus skip cores fully flushed since a page's insert
};

// One page of a masked shootdown batch: the vpn to invalidate plus the
// routing state captured from the owning frame while the caller held its
// claim. The defaults (all cores, never-flushed) make an entry equivalent to
// a broadcast shootdown of that page.
struct PageShootdown {
  uint64_t vpn = 0;
  uint64_t cpu_mask = ~0ull;   // cores whose TLB may cache this translation
  uint64_t tlb_epoch = ~0ull;  // global flush epoch at the page's last insert
};

class TlbSet {
 public:
  // Entries per core. Direct-mapped; sized like a big L2 STLB.
  static constexpr int kEntries = 2048;

  struct LookupResult {
    bool hit = false;
    bool writable = false;
  };

  // Statistical lookup for virtual page number `vpn` on `core`.
  LookupResult Lookup(int core, uint64_t vpn) const;

  // Fills the entry after a walk. `writable` caches the PTE W bit. Returns
  // the current global flush epoch so the caller can stamp the owning
  // frame's tlb_epoch (the kMaskGen elision input).
  uint64_t Insert(int core, uint64_t vpn, bool writable);

  // Local single-page invalidation (invlpg analog).
  void InvalidatePage(int core, uint64_t vpn);

  // Drops every entry on `core` and advances its flush epoch: pages whose
  // last insert predates the flush need no IPI to this core afterwards.
  void FlushCore(int core);

  // Broadcast compatibility wrapper: invalidates `vpns` on all active cores
  // exactly like a masked shootdown whose every page carries the default
  // (all-ones) mask.
  void Shootdown(SimClock& clock, int initiator_core, int active_cores,
                 std::span<const uint64_t> vpns, PostedIpiFabric& fabric);

  // Masked batched shootdown. The initiator (`initiator_core`, whose clock
  // is `clock`) always invalidates the whole batch locally and pays for it;
  // each remaining core in [0, active_cores) receives one coalesced IPI
  // covering only the batch pages whose mask names it (per `mode`), charged
  // through the fabric. Cores with no surviving page are elided. A batch
  // whose per-core cost exceeds one full flush is applied as FlushCore on
  // that core (so simulated TLB state matches the charged cost) and bumps
  // its flush epoch. Empty batches are free: no IPI, no histogram sample.
  void Shootdown(SimClock& clock, int initiator_core, int active_cores,
                 std::span<const PageShootdown> pages, PostedIpiFabric& fabric,
                 ShootdownMaskMode mode);

  // Global flush epoch (bumped by every FlushCore) and the epoch at which
  // `core` last had its whole TLB flushed.
  uint64_t CurrentEpoch() const { return epoch_.load(std::memory_order_relaxed); }
  uint64_t CoreFlushEpoch(int core) const {
    return flush_epochs_[core].flushed.load(std::memory_order_relaxed);
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t shootdowns() const { return shootdowns_.load(std::memory_order_relaxed); }
  // Fan-out accounting: IPIs actually sent by shootdowns, remote cores
  // skipped (mask or generation), and shootdowns that stayed fully local.
  uint64_t ipis_sent() const { return ipis_sent_.load(std::memory_order_relaxed); }
  uint64_t ipis_elided() const { return ipis_elided_.load(std::memory_order_relaxed); }
  uint64_t shootdowns_local() const {
    return shootdowns_local_.load(std::memory_order_relaxed);
  }

 private:
  // Packed entry: (vpn << 2) | (writable << 1) | valid. vpn of ~0 unused.
  static uint64_t Pack(uint64_t vpn, bool writable) {
    return (vpn << 2) | (writable ? 2u : 0u) | 1u;
  }

  struct alignas(kCacheLineSize) CoreTlb {
    std::array<std::atomic<uint64_t>, kEntries> entries{};
  };

  struct alignas(kCacheLineSize) CoreEpoch {
    std::atomic<uint64_t> flushed{0};
  };

  static int SlotFor(uint64_t vpn) { return static_cast<int>(vpn) & (kEntries - 1); }

  // True when `core` must invalidate `page` under `mode`.
  bool CoreNeedsPage(int core, const PageShootdown& page, ShootdownMaskMode mode) const;

  std::array<CoreTlb, CoreRegistry::kMaxCores> cores_{};
  std::array<CoreEpoch, CoreRegistry::kMaxCores> flush_epochs_{};
  std::atomic<uint64_t> epoch_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> shootdowns_{0};
  std::atomic<uint64_t> ipis_sent_{0};
  std::atomic<uint64_t> ipis_elided_{0};
  std::atomic<uint64_t> shootdowns_local_{0};
};

}  // namespace aquila

#endif  // AQUILA_SRC_MEM_TLB_H_
