// Software x86-64-style 4-level page table: guest-virtual -> guest-physical.
//
// Aquila keeps a single page table shared by all threads of the process
// (§3.4): RadixVM's per-core tables are rejected because they multiply page
// faults. This is that table, with the same 9-9-9-9-12 radix as hardware.
// Leaf PTEs are single atomics so the fault handler can install and update
// translations with plain CAS/fetch_or, and the dirty bit is authoritative:
// a store through a mapping marks the PTE dirty before touching data, so
// writeback never loses a concurrent write (the same contract hardware
// provides by setting the D bit on the TLB fill).
//
// Intermediate tables are installed lock-free with CAS and never freed until
// the table is destroyed (address-space teardown), which removes all ABA and
// use-after-free concerns from the fault path.
#ifndef AQUILA_SRC_MEM_PAGE_TABLE_H_
#define AQUILA_SRC_MEM_PAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/util/bitops.h"
#include "src/util/spinlock.h"

namespace aquila {

// PTE layout (mirrors hardware where it matters):
//   bit 0   P   present
//   bit 1   W   writable
//   bit 5   A   accessed
//   bit 6   D   dirty
//   bit 7   PS  huge (2 MB leaf parked in a level-1 interior slot)
//   bits 12..51 guest-physical frame base (GPA >> 12 << 12)
struct Pte {
  static constexpr uint64_t kPresent = 1ull << 0;
  static constexpr uint64_t kWritable = 1ull << 1;
  static constexpr uint64_t kAccessed = 1ull << 5;
  static constexpr uint64_t kDirty = 1ull << 6;
  // Hardware's PS bit position. Deliberately NOT in kFlagsMask: paths that
  // copy flags between PTEs (remap, upgrade) must never propagate hugeness.
  static constexpr uint64_t kHuge = 1ull << 7;
  static constexpr uint64_t kFlagsMask = kPresent | kWritable | kAccessed | kDirty;
  static constexpr uint64_t kAddrMask = 0x000ffffffffff000ull;

  static uint64_t Make(uint64_t gpa, uint64_t flags) { return (gpa & kAddrMask) | flags; }
  static uint64_t Gpa(uint64_t pte) { return pte & kAddrMask; }
  static bool Present(uint64_t pte) { return (pte & kPresent) != 0; }
  static bool Writable(uint64_t pte) { return (pte & kWritable) != 0; }
  static bool Dirty(uint64_t pte) { return (pte & kDirty) != 0; }
  static bool Huge(uint64_t pte) { return (pte & kHuge) != 0; }
};

class PageTable {
 public:
  PageTable();
  ~PageTable();

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Returns the leaf PTE slot for `vaddr`, creating intermediate tables on
  // demand. Never fails (aborts on OOM). The returned pointer stays valid
  // for the table's lifetime. CHECK-fails if the descent hits a 2 MB leaf:
  // every 4K-granular mutation protocol demotes (SplitHuge) first.
  std::atomic<uint64_t>* Walk(uint64_t vaddr);

  // Returns the leaf PTE slot if all intermediate tables exist, else null.
  // A 2 MB leaf covering `vaddr` also returns null — huge mappings are
  // read-only by protocol, so callers that probe-and-modify (protect, sync,
  // remove) correctly treat the span as having nothing to modify.
  std::atomic<uint64_t>* WalkExisting(uint64_t vaddr) const;

  // Convenience: current PTE value (0 if nothing installed). For a vaddr
  // covered by a 2 MB leaf this synthesizes the equivalent 4K view —
  // Gpa() advanced to the covering 4K page, flags preserved, kHuge set —
  // so hit paths derive the frame without knowing about huge mappings.
  uint64_t Lookup(uint64_t vaddr) const;

  // Installs a 2 MB leaf in the level-1 slot covering `vaddr` (both `vaddr`
  // and `gpa` 2 MB-aligned). The caller must have already removed every 4K
  // PTE under the slot and must hold whatever locks keep concurrent installs
  // out of the span. Returns false if the slot already holds a huge leaf.
  // A replaced (empty) child table is kept on a retired list until table
  // destruction so concurrent lock-free descents stay safe.
  bool InstallHuge(uint64_t vaddr, uint64_t gpa, uint64_t flags);

  // Splits the 2 MB leaf covering `vaddr` back into 512 4K PTEs with
  // identical translations (GPA-contiguous by construction), so the swap
  // needs no TLB shootdown. Single demoter per span by protocol. Returns
  // the old huge PTE value, or 0 if the slot held no huge leaf.
  uint64_t SplitHuge(uint64_t vaddr);

  // Installs a translation; returns false if a present mapping already
  // existed (lost the race to a concurrent fault).
  bool Install(uint64_t vaddr, uint64_t gpa, uint64_t flags);

  // Clears the PTE and returns its previous value.
  uint64_t Remove(uint64_t vaddr);

  uint64_t present_count() const { return present_.load(std::memory_order_relaxed); }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kEntriesPerTable = 512;

  struct Node;  // table of 512 slots; interior slots hold Node*, leaves hold PTEs

  static int IndexAt(uint64_t vaddr, int level) {
    return static_cast<int>((vaddr >> (kPageShift + 9 * level)) & (kEntriesPerTable - 1));
  }

  Node* EnsureChild(Node* node, int index);
  static void FreeRecursive(Node* node, int level);

  Node* root_;
  std::atomic<uint64_t> present_{0};
  // Child tables displaced by InstallHuge. They hold no present PTEs, but a
  // concurrent WalkExisting may still be dereferencing them, so (like every
  // interior node) they live until the table is destroyed.
  SpinLock retired_lock_;
  std::vector<Node*> retired_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_MEM_PAGE_TABLE_H_
