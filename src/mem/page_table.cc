#include "src/mem/page_table.h"

#include <array>

#include "src/util/logging.h"

namespace aquila {

struct PageTable::Node {
  // Interior levels store Node* in the atomics; the leaf level stores PTEs.
  std::array<std::atomic<uint64_t>, kEntriesPerTable> slots{};
};

PageTable::PageTable() : root_(new Node()) {}

PageTable::~PageTable() {
  FreeRecursive(root_, kLevels - 1);
  for (Node* node : retired_) {
    delete node;  // leaf tables displaced by InstallHuge; no children
  }
}

void PageTable::FreeRecursive(Node* node, int level) {
  if (level > 0) {
    for (auto& slot : node->slots) {
      uint64_t child = slot.load(std::memory_order_relaxed);
      // A present-flagged value in an interior slot is a 2 MB leaf, not a
      // Node* (nodes are 8-aligned, so bit 0 of a pointer is always clear).
      if (child != 0 && !Pte::Present(child)) {
        FreeRecursive(reinterpret_cast<Node*>(child), level - 1);
      }
    }
  }
  delete node;
}

PageTable::Node* PageTable::EnsureChild(Node* node, int index) {
  uint64_t child = node->slots[index].load(std::memory_order_acquire);
  if (child != 0) {
    AQUILA_CHECK(!Pte::Present(child));  // 2 MB leaf: caller must demote first
    return reinterpret_cast<Node*>(child);
  }
  Node* fresh = new Node();
  uint64_t expected = 0;
  if (node->slots[index].compare_exchange_strong(expected, reinterpret_cast<uint64_t>(fresh),
                                                 std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;  // lost the install race
  AQUILA_CHECK(!Pte::Present(expected));  // raced with InstallHuge: protocol error
  return reinterpret_cast<Node*>(expected);
}

std::atomic<uint64_t>* PageTable::Walk(uint64_t vaddr) {
  Node* node = root_;
  for (int level = kLevels - 1; level > 0; level--) {
    node = EnsureChild(node, IndexAt(vaddr, level));
  }
  return &node->slots[IndexAt(vaddr, 0)];
}

std::atomic<uint64_t>* PageTable::WalkExisting(uint64_t vaddr) const {
  Node* node = root_;
  for (int level = kLevels - 1; level > 0; level--) {
    uint64_t child = node->slots[IndexAt(vaddr, level)].load(std::memory_order_acquire);
    // Missing child or a 2 MB leaf (present-flagged value, never a Node*):
    // no 4K slot exists here.
    if (child == 0 || Pte::Present(child)) {
      return nullptr;
    }
    node = reinterpret_cast<Node*>(child);
  }
  return const_cast<std::atomic<uint64_t>*>(&node->slots[IndexAt(vaddr, 0)]);
}

uint64_t PageTable::Lookup(uint64_t vaddr) const {
  Node* node = root_;
  for (int level = kLevels - 1; level > 0; level--) {
    uint64_t child = node->slots[IndexAt(vaddr, level)].load(std::memory_order_acquire);
    if (child == 0) {
      return 0;
    }
    if (Pte::Present(child)) {
      // 2 MB leaf (only ever installed at level 1): synthesize the covering
      // 4K view. The run's GPAs are contiguous, so advancing the base by the
      // in-span offset lands on exactly the page a 4K PTE would name.
      AQUILA_DCHECK(level == 1);
      uint64_t offset = vaddr & (kHugePage2M - 1) & ~(kPageSize - 1);
      return Pte::Make(Pte::Gpa(child) + offset, child & Pte::kFlagsMask) | Pte::kHuge;
    }
    node = reinterpret_cast<Node*>(child);
  }
  return node->slots[IndexAt(vaddr, 0)].load(std::memory_order_acquire);
}

bool PageTable::InstallHuge(uint64_t vaddr, uint64_t gpa, uint64_t flags) {
  AQUILA_DCHECK(IsAligned(vaddr, kHugePage2M));
  AQUILA_DCHECK(IsAligned(gpa, kPageSize));
  Node* node = root_;
  for (int level = kLevels - 1; level > 1; level--) {
    node = EnsureChild(node, IndexAt(vaddr, level));
  }
  std::atomic<uint64_t>& slot = node->slots[IndexAt(vaddr, 1)];
  uint64_t desired = Pte::Make(gpa, (flags & Pte::kFlagsMask) | Pte::kPresent) | Pte::kHuge;
  uint64_t old = slot.load(std::memory_order_acquire);
  while (true) {
    if (Pte::Present(old)) {
      return false;  // already huge
    }
    if (slot.compare_exchange_weak(old, desired, std::memory_order_acq_rel)) {
      break;
    }
  }
  if (old != 0) {
    // Displaced child table. The caller already removed every PTE in it, but
    // a concurrent lock-free descent may still hold the pointer: retire, do
    // not delete.
    std::lock_guard<SpinLock> guard(retired_lock_);
    retired_.push_back(reinterpret_cast<Node*>(old));
  }
  present_.fetch_add(kEntriesPerTable, std::memory_order_relaxed);
  return true;
}

uint64_t PageTable::SplitHuge(uint64_t vaddr) {
  AQUILA_DCHECK(IsAligned(vaddr, kHugePage2M));
  Node* node = root_;
  for (int level = kLevels - 1; level > 1; level--) {
    uint64_t child = node->slots[IndexAt(vaddr, level)].load(std::memory_order_acquire);
    if (child == 0) {
      return 0;
    }
    node = reinterpret_cast<Node*>(child);
  }
  std::atomic<uint64_t>& slot = node->slots[IndexAt(vaddr, 1)];
  uint64_t huge = slot.load(std::memory_order_acquire);
  // Present is the pointer-vs-leaf discriminator (a Node* is 8-aligned, so
  // its bit 0 is clear — but bit 7, the PS bit, can be anything in a heap
  // address, so Pte::Huge alone would misread a child table as a leaf).
  if (!Pte::Present(huge)) {
    return 0;  // empty slot or an already-split child table
  }
  AQUILA_DCHECK(Pte::Huge(huge));
  // Build the replacement table fully before publishing: 512 4K PTEs whose
  // translations equal the huge view bit for bit (kHuge itself stays out of
  // kFlagsMask), so stale TLB entries remain correct and the swap needs no
  // shootdown.
  Node* child = new Node();
  uint64_t flags = huge & Pte::kFlagsMask;
  for (int i = 0; i < kEntriesPerTable; i++) {
    child->slots[i].store(
        Pte::Make(Pte::Gpa(huge) + static_cast<uint64_t>(i) * kPageSize, flags),
        std::memory_order_relaxed);
  }
  slot.store(reinterpret_cast<uint64_t>(child), std::memory_order_release);
  // present_ unchanged: 512 new 4K entries replace a leaf counted as 512.
  return huge;
}

bool PageTable::Install(uint64_t vaddr, uint64_t gpa, uint64_t flags) {
  std::atomic<uint64_t>* pte = Walk(vaddr);
  uint64_t expected = pte->load(std::memory_order_acquire);
  uint64_t desired = Pte::Make(gpa, flags | Pte::kPresent);
  while (true) {
    if (Pte::Present(expected)) {
      return false;
    }
    if (pte->compare_exchange_weak(expected, desired, std::memory_order_acq_rel)) {
      present_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

uint64_t PageTable::Remove(uint64_t vaddr) {
  std::atomic<uint64_t>* pte = WalkExisting(vaddr);
  if (pte == nullptr) {
    return 0;
  }
  uint64_t old = pte->exchange(0, std::memory_order_acq_rel);
  if (Pte::Present(old)) {
    present_.fetch_sub(1, std::memory_order_relaxed);
  }
  return old;
}

}  // namespace aquila
