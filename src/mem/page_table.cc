#include "src/mem/page_table.h"

#include <array>

#include "src/util/logging.h"

namespace aquila {

struct PageTable::Node {
  // Interior levels store Node* in the atomics; the leaf level stores PTEs.
  std::array<std::atomic<uint64_t>, kEntriesPerTable> slots{};
};

PageTable::PageTable() : root_(new Node()) {}

PageTable::~PageTable() { FreeRecursive(root_, kLevels - 1); }

void PageTable::FreeRecursive(Node* node, int level) {
  if (level > 0) {
    for (auto& slot : node->slots) {
      uint64_t child = slot.load(std::memory_order_relaxed);
      if (child != 0) {
        FreeRecursive(reinterpret_cast<Node*>(child), level - 1);
      }
    }
  }
  delete node;
}

PageTable::Node* PageTable::EnsureChild(Node* node, int index) {
  uint64_t child = node->slots[index].load(std::memory_order_acquire);
  if (child != 0) {
    return reinterpret_cast<Node*>(child);
  }
  Node* fresh = new Node();
  uint64_t expected = 0;
  if (node->slots[index].compare_exchange_strong(expected, reinterpret_cast<uint64_t>(fresh),
                                                 std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;  // lost the install race
  return reinterpret_cast<Node*>(expected);
}

std::atomic<uint64_t>* PageTable::Walk(uint64_t vaddr) {
  Node* node = root_;
  for (int level = kLevels - 1; level > 0; level--) {
    node = EnsureChild(node, IndexAt(vaddr, level));
  }
  return &node->slots[IndexAt(vaddr, 0)];
}

std::atomic<uint64_t>* PageTable::WalkExisting(uint64_t vaddr) const {
  Node* node = root_;
  for (int level = kLevels - 1; level > 0; level--) {
    uint64_t child = node->slots[IndexAt(vaddr, level)].load(std::memory_order_acquire);
    if (child == 0) {
      return nullptr;
    }
    node = reinterpret_cast<Node*>(child);
  }
  return const_cast<std::atomic<uint64_t>*>(&node->slots[IndexAt(vaddr, 0)]);
}

uint64_t PageTable::Lookup(uint64_t vaddr) const {
  std::atomic<uint64_t>* pte = WalkExisting(vaddr);
  return pte == nullptr ? 0 : pte->load(std::memory_order_acquire);
}

bool PageTable::Install(uint64_t vaddr, uint64_t gpa, uint64_t flags) {
  std::atomic<uint64_t>* pte = Walk(vaddr);
  uint64_t expected = pte->load(std::memory_order_acquire);
  uint64_t desired = Pte::Make(gpa, flags | Pte::kPresent);
  while (true) {
    if (Pte::Present(expected)) {
      return false;
    }
    if (pte->compare_exchange_weak(expected, desired, std::memory_order_acq_rel)) {
      present_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

uint64_t PageTable::Remove(uint64_t vaddr) {
  std::atomic<uint64_t>* pte = WalkExisting(vaddr);
  if (pte == nullptr) {
    return 0;
  }
  uint64_t old = pte->exchange(0, std::memory_order_acq_rel);
  if (Pte::Present(old)) {
    present_.fetch_sub(1, std::memory_order_relaxed);
  }
  return old;
}

}  // namespace aquila
