// Per-thread ring-buffer event tracer with Chrome trace-event export.
//
// Each thread records typed events (fault begin/end, eviction batches, TLB
// shootdowns, vmcalls, device I/O, compactions) into a fixed-size private
// ring: recording is two plain stores and one relaxed atomic bump — no
// allocation, no locks, overwrite-oldest when full — so it is safe on the
// fault path. Timestamps are simulated cycles (the runtime's native
// timebase, see src/util/sim_clock.h).
//
// Tracing is off by default; Tracer::SetEnabled(true) arms it (benchmarks
// arm it when AQUILA_TRACE=<path> is set, see bench/common.h).
// DumpChromeTrace() renders every thread's ring as Chrome trace_event JSON
// ("ph":"X" complete events) loadable in Perfetto / chrome://tracing.
#ifndef AQUILA_SRC_TELEMETRY_TRACE_H_
#define AQUILA_SRC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/telemetry/telemetry_config.h"
#include "src/util/sim_clock.h"

namespace aquila {
namespace telemetry {

enum class TraceEventType : uint8_t {
  kFaultMajor = 0,
  kFaultMinor,
  kFaultUpgrade,
  kEvictBatch,
  kMsync,
  kShootdown,
  kVmcall,
  kEptFault,
  kDeviceRead,
  kDeviceWrite,
  kDeviceReadBatch,
  kDeviceWriteBatch,
  kCompaction,
  kMemtableFlush,
  kRingSubmit,
  kRealTrap,
  kTypeCount,
};

const char* TraceEventName(TraceEventType type);

struct TraceEvent {
  uint64_t start_cycles = 0;
  uint64_t duration_cycles = 0;
  uint64_t arg = 0;  // event-specific payload (batch size, bytes, ...)
  TraceEventType type = TraceEventType::kFaultMajor;
  uint16_t core = 0;
};

class Tracer {
 public:
  // Events retained per thread; older events are overwritten.
  static constexpr size_t kRingCapacity = 4096;

  static void SetEnabled(bool on);
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  // Appends one event to the calling thread's ring (no-op when disabled).
  static void Record(TraceEventType type, uint64_t start_cycles, uint64_t duration_cycles,
                     uint64_t arg = 0);

  // All retained events, per-thread oldest-first. Events recorded
  // concurrently with collection may be torn; collection is for
  // post-run/export use.
  static std::vector<TraceEvent> CollectAll();

  // Chrome trace-event JSON ({"traceEvents":[...]}); `cycles_per_us`
  // converts simulated cycles to the microsecond timestamps the format
  // wants (pass GlobalCostModel().cycles_per_us).
  static std::string DumpChromeTrace(uint64_t cycles_per_us = 2400);

  // Drops all retained events (test/benchmark phase boundaries).
  static void Reset();

  // Total events ever recorded (monotonic, survives ring wraparound).
  static uint64_t TotalRecorded();

  // Events lost to ring wraparound across all threads: sum of
  // max(0, recorded - kRingCapacity). Exposed as the
  // `aquila.trace.dropped_events` registry metric; DumpChromeTrace() also
  // emits a per-thread metadata record so a truncated export says so.
  static uint64_t DroppedEvents();

 private:
  static std::atomic<bool> enabled_;
};

// RAII span: captures the simulated clock at construction and records one
// complete event at destruction. Compiles to nothing when telemetry is off.
class TraceSpan {
 public:
#if AQUILA_TELEMETRY_ENABLED
  TraceSpan(TraceEventType type, const SimClock& clock, uint64_t arg = 0)
      : type_(type), clock_(&clock), start_(clock.Now()), arg_(arg) {}
  ~TraceSpan() {
    if (Tracer::Enabled()) {
      Tracer::Record(type_, start_, clock_->Now() - start_, arg_);
    }
  }
  void set_arg(uint64_t arg) { arg_ = arg; }

 private:
  TraceEventType type_;
  const SimClock* clock_;
  uint64_t start_;
  uint64_t arg_;
#else
  TraceSpan(TraceEventType, const SimClock&, uint64_t = 0) {}
  void set_arg(uint64_t) {}
#endif

 public:
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

}  // namespace telemetry
}  // namespace aquila

#endif  // AQUILA_SRC_TELEMETRY_TRACE_H_
