#include "src/telemetry/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"
#include "src/telemetry/trace.h"

namespace aquila {
namespace telemetry {

namespace {

bool WriteAll(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

void WriteResponse(int fd, int status, const char* status_text, const char* content_type,
                   const std::string& body) {
  char header[256];
  int len = std::snprintf(header, sizeof(header),
                          "HTTP/1.0 %d %s\r\n"
                          "Content-Type: %s\r\n"
                          "Content-Length: %zu\r\n"
                          "Connection: close\r\n"
                          "\r\n",
                          status, status_text, content_type, body.size());
  if (WriteAll(fd, header, static_cast<size_t>(len))) {
    WriteAll(fd, body.data(), body.size());
  }
}

std::mutex& HealthProviderMutex() {
  static std::mutex mu;
  return mu;
}

std::function<std::string()>& HealthProviderSlot() {
  static std::function<std::string()> provider;
  return provider;
}

}  // namespace

void SetHealthJsonProvider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(HealthProviderMutex());
  HealthProviderSlot() = std::move(provider);
}

std::string HealthJson() {
  std::function<std::string()> provider;
  {
    std::lock_guard<std::mutex> lock(HealthProviderMutex());
    provider = HealthProviderSlot();
  }
  if (!provider) {
    return "{\"devices\":[]}";
  }
  return provider();
}

std::unique_ptr<StatsServer> StatsServer::Start(const Options& options, std::string* error) {
  auto fail = [error](const char* what) -> std::unique_ptr<StatsServer> {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    return nullptr;
  };

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return fail("socket");
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return fail("bind");
  }
  if (listen(fd, 8) != 0) {
    close(fd);
    return fail("listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    close(fd);
    return fail("getsockname");
  }

  std::unique_ptr<StatsServer> server(new StatsServer(options));
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->thread_ = std::thread([raw = server.get()] { raw->Serve(); });
  return server;
}

StatsServer::~StatsServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
  }
}

void StatsServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = poll(&pfd, 1, /*timeout_ms=*/100);  // short timeout: bounded shutdown latency
    if (ready <= 0) {
      continue;
    }
    int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    HandleConnection(conn);
    close(conn);
  }
}

void StatsServer::HandleConnection(int fd) {
  // Read until the end of the request headers (or a size cap — request
  // bodies are not part of this protocol).
  char buf[4096];
  size_t have = 0;
  while (have < sizeof(buf) - 1) {
    pollfd pfd{fd, POLLIN, 0};
    if (poll(&pfd, 1, /*timeout_ms=*/1000) <= 0) {
      return;  // slow or dead client: drop it, never block the server
    }
    ssize_t n = recv(fd, buf + have, sizeof(buf) - 1 - have, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      break;
    }
    have += static_cast<size_t>(n);
    buf[have] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr || std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  buf[have] = '\0';

  if (std::strncmp(buf, "GET ", 4) != 0) {
    WriteResponse(fd, 405, "Method Not Allowed", "text/plain", "GET only\n");
    return;
  }
  const char* path = buf + 4;
  const char* path_end = path;
  while (*path_end != '\0' && *path_end != ' ' && *path_end != '\r' && *path_end != '\n' &&
         *path_end != '?') {
    path_end++;
  }
  const std::string route(path, static_cast<size_t>(path_end - path));

  if (route == "/metrics") {
    WriteResponse(fd, 200, "OK", "text/plain; version=0.0.4", Registry().ToText());
  } else if (route == "/metrics.json") {
    WriteResponse(fd, 200, "OK", "application/json", Registry().ToJson());
  } else if (route == "/traces") {
    WriteResponse(fd, 200, "OK", "application/json",
                  Tracer::DumpChromeTrace(options_.cycles_per_us));
  } else if (route == "/slow") {
    WriteResponse(fd, 200, "OK", "application/json", SpanCollector::Global().SlowTracesJson());
  } else if (route == "/health") {
    WriteResponse(fd, 200, "OK", "application/json", HealthJson());
  } else {
    WriteResponse(fd, 404, "Not Found", "text/plain",
                  "routes: /metrics /metrics.json /traces /slow /health\n");
  }
}

}  // namespace telemetry
}  // namespace aquila
