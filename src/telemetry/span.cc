#include "src/telemetry/span.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/util/cpu.h"

namespace aquila {
namespace telemetry {

const char* SpanPhaseName(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kFault: return "fault";
    case SpanPhase::kMsync: return "msync";
    case SpanPhase::kCacheLookup: return "cache_lookup";
    case SpanPhase::kLockWait: return "lock_wait";
    case SpanPhase::kQueueWait: return "queue_wait";
    case SpanPhase::kDevice: return "device";
    case SpanPhase::kFillCopy: return "fill_copy";
    case SpanPhase::kEvict: return "evict";
    case SpanPhase::kWriteback: return "writeback";
    case SpanPhase::kShootdown: return "shootdown";
    case SpanPhase::kDirtyTrack: return "dirty_track";
    case SpanPhase::kReadahead: return "readahead";
    case SpanPhase::kWatchdog: return "watchdog";
    case SpanPhase::kPark: return "park";
    case SpanPhase::kResume: return "resume";
    case SpanPhase::kPhaseCount: break;
  }
  return "unknown";
}

const char* SpanOpName(SpanOp op) {
  switch (op) {
    case SpanOp::kFaultMajor: return "fault_major";
    case SpanOp::kFaultMinor: return "fault_minor";
    case SpanOp::kFaultUpgrade: return "fault_upgrade";
    case SpanOp::kMsync: return "msync";
    case SpanOp::kOpCount: break;
  }
  return "unknown";
}

SpanCollector& SpanCollector::Global() {
  static SpanCollector* collector = new SpanCollector();
  return *collector;
}

SpanCollector::SpanCollector()
    : started_(Registry().GetCounter("aquila.span.started")),
      finalized_(Registry().GetCounter("aquila.span.finalized")),
      dropped_(Registry().GetCounter("aquila.span.dropped")),
      retained_(Registry().GetCounter("aquila.span.retained")) {}

void SpanCollector::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  sample_every_.store(options.sample_every, std::memory_order_relaxed);
}

SpanCollector::Options SpanCollector::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

bool SpanCollector::ShouldSample() {
  const uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) {
    return false;
  }
  return sample_counter_.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

bool SpanCollector::BeginTrace(uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_.size() >= options_.max_active) {
    dropped_->Add();
    return false;
  }
  ActiveTrace& trace = active_[trace_id];
  trace.spans.reserve(16);
  started_->Add();
  return true;
}

void SpanCollector::Record(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(record.trace_id);
  if (it == active_.end()) {
    return;  // trace was dropped at admission; nothing to attach to
  }
  ActiveTrace& trace = it->second;
  if (trace.spans.size() >= options_.max_spans_per_trace) {
    trace.overflowed = true;
    dropped_->Add();
    return;
  }
  trace.spans.push_back(record);
}

void SpanCollector::CloseRoot(const SpanRecord& root) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(root.trace_id);
  if (it == active_.end()) {
    return;
  }
  ActiveTrace& trace = it->second;
  trace.spans.push_back(root);  // the root always fits, even past the cap
  trace.root_closed = true;
  if (trace.pending_async == 0) {
    ActiveTrace done = std::move(trace);
    active_.erase(it);
    FinalizeLocked(root.trace_id, std::move(done));
  }
}

void SpanCollector::NoteAsyncSubmitted(uint64_t trace_id) {
  if (trace_id == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(trace_id);
  if (it != active_.end()) {
    it->second.pending_async++;
  }
}

void SpanCollector::CompleteAsync(const SpanContext& parent, SpanPhase phase,
                                  uint64_t start_cycles, uint64_t end_cycles, uint64_t arg) {
  if (parent.trace_id == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(parent.trace_id);
  if (it == active_.end()) {
    return;  // submit raced trace teardown (Reset); drop silently
  }
  ActiveTrace& trace = it->second;
  if (trace.spans.size() < options_.max_spans_per_trace) {
    SpanRecord record;
    record.trace_id = parent.trace_id;
    record.span_id = next_id_.fetch_add(1, std::memory_order_relaxed);
    record.parent_id = parent.span_id;
    record.start_cycles = start_cycles;
    record.end_cycles = end_cycles;
    record.arg = arg;
    record.phase = phase;
    record.core = static_cast<uint16_t>(CoreRegistry::CurrentCore());
    trace.spans.push_back(record);
  } else {
    trace.overflowed = true;
    dropped_->Add();
  }
  if (trace.pending_async > 0) {
    trace.pending_async--;
  }
  if (trace.root_closed && trace.pending_async == 0) {
    ActiveTrace done = std::move(trace);
    active_.erase(it);
    FinalizeLocked(parent.trace_id, std::move(done));
  }
}

SpanCollector::AttributionSample SpanCollector::Summarize(const SpanTree& tree) {
  AttributionSample sample;
  sample.wall = tree.wall_cycles;
  uint64_t root_id = 0;
  for (const SpanRecord& record : tree.spans) {
    if (record.parent_id == 0) {
      root_id = record.span_id;
      break;
    }
  }
  for (const SpanRecord& record : tree.spans) {
    if (record.parent_id != root_id || record.span_id == root_id) {
      continue;  // attribution decomposes the root into its DIRECT children
    }
    const uint64_t duration = record.end_cycles - record.start_cycles;
    sample.child_total += duration;
    sample.phase_cycles[static_cast<size_t>(record.phase)] += duration;
  }
  return sample;
}

void SpanCollector::FinalizeLocked(uint64_t trace_id, ActiveTrace&& trace) {
  const SpanRecord* root = nullptr;
  for (const SpanRecord& record : trace.spans) {
    if (record.parent_id == 0) {
      root = &record;
      break;
    }
  }
  if (root == nullptr) {
    dropped_->Add();
    return;
  }

  SpanTree tree;
  tree.trace_id = trace_id;
  tree.op = root->op;
  tree.wall_cycles = root->end_cycles - root->start_cycles;
  tree.spans = std::move(trace.spans);

  AttributionSample sample = Summarize(tree);
  tree.child_cycles = sample.child_total;

  finalized_->Add();
  finalized_count_.fetch_add(1, std::memory_order_relaxed);

  OpState& op_state = ops_[static_cast<size_t>(tree.op)];

  // Attribution reservoir: uniform over all finalized traces of this op.
  op_state.sample_seen++;
  if (op_state.samples.size() < options_.max_attribution_samples) {
    op_state.samples.push_back(sample);
  } else {
    reservoir_rng_ = reservoir_rng_ * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t slot = (reservoir_rng_ >> 16) % op_state.sample_seen;
    if (slot < op_state.samples.size()) {
      op_state.samples[slot] = sample;
    }
  }

  // Whole-tree retention, in priority order: top-K slowest per op, then the
  // slow-threshold ring, then the 1-in-N baseline.
  if (options_.top_k > 0) {
    if (op_state.top.size() < options_.top_k) {
      op_state.top.push_back(tree);
      retained_->Add();
      return;
    }
    auto slowest_min = std::min_element(
        op_state.top.begin(), op_state.top.end(),
        [](const SpanTree& a, const SpanTree& b) { return a.wall_cycles < b.wall_cycles; });
    if (tree.wall_cycles > slowest_min->wall_cycles) {
      *slowest_min = std::move(tree);
      retained_->Add();
      return;
    }
  }
  if (options_.slow_threshold_cycles > 0 && tree.wall_cycles >= options_.slow_threshold_cycles) {
    slow_.push_back(std::move(tree));
    while (slow_.size() > options_.max_slow) {
      slow_.pop_front();
    }
    retained_->Add();
    return;
  }
  if (options_.baseline_every > 0 && baseline_counter_++ % options_.baseline_every == 0) {
    baseline_.push_back(std::move(tree));
    while (baseline_.size() > options_.max_slow) {
      baseline_.pop_front();
    }
    retained_->Add();
  }
}

std::vector<SpanTree> SpanCollector::RetainedTrees() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanTree> trees;
  for (const OpState& op_state : ops_) {
    trees.insert(trees.end(), op_state.top.begin(), op_state.top.end());
  }
  trees.insert(trees.end(), slow_.begin(), slow_.end());
  trees.insert(trees.end(), baseline_.begin(), baseline_.end());
  std::sort(trees.begin(), trees.end(), [](const SpanTree& a, const SpanTree& b) {
    return a.wall_cycles > b.wall_cycles;
  });
  return trees;
}

bool SpanCollector::Attribution(SpanOp op, double quantile, PhaseAttribution* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const OpState& op_state = ops_[static_cast<size_t>(op)];
  if (op_state.samples.empty()) {
    return false;
  }
  std::vector<AttributionSample> sorted = op_state.samples;
  std::sort(sorted.begin(), sorted.end(),
            [](const AttributionSample& a, const AttributionSample& b) { return a.wall < b.wall; });
  const size_t n = sorted.size();
  const size_t center = static_cast<size_t>(quantile * static_cast<double>(n - 1) + 0.5);
  // Cohort attribution: average over a small window of neighbors around the
  // percentile so one outlier request doesn't define "what p99 faults do".
  const size_t radius = std::max<size_t>(1, n / 40) - 1;
  const size_t lo = center > radius ? center - radius : 0;
  const size_t hi = std::min(n - 1, center + radius);
  uint64_t wall_sum = 0;
  uint64_t child_sum = 0;
  uint64_t phase_sum[static_cast<size_t>(SpanPhase::kPhaseCount)] = {};
  for (size_t i = lo; i <= hi; ++i) {
    wall_sum += sorted[i].wall;
    child_sum += sorted[i].child_total;
    for (size_t p = 0; p < static_cast<size_t>(SpanPhase::kPhaseCount); ++p) {
      phase_sum[p] += sorted[i].phase_cycles[p];
    }
  }
  *out = PhaseAttribution{};
  out->wall_cycles = sorted[std::min(center, n - 1)].wall;
  if (wall_sum == 0) {
    return true;
  }
  out->coverage = static_cast<double>(child_sum) / static_cast<double>(wall_sum);
  for (size_t p = 0; p < static_cast<size_t>(SpanPhase::kPhaseCount); ++p) {
    out->fraction[p] = static_cast<double>(phase_sum[p]) / static_cast<double>(wall_sum);
  }
  return true;
}

namespace {

void AppendTreeJson(std::ostringstream& out, const SpanTree& tree) {
  out << "{\"trace_id\":" << tree.trace_id << ",\"op\":\"" << SpanOpName(tree.op)
      << "\",\"wall_cycles\":" << tree.wall_cycles << ",\"child_cycles\":" << tree.child_cycles
      << ",\"spans\":[";
  for (size_t i = 0; i < tree.spans.size(); ++i) {
    const SpanRecord& span = tree.spans[i];
    if (i > 0) {
      out << ",";
    }
    out << "{\"span_id\":" << span.span_id << ",\"parent_id\":" << span.parent_id
        << ",\"phase\":\"" << SpanPhaseName(span.phase) << "\",\"start_cycles\":" << span.start_cycles
        << ",\"duration_cycles\":" << (span.end_cycles - span.start_cycles)
        << ",\"arg\":" << span.arg << ",\"core\":" << span.core << "}";
  }
  out << "]}";
}

}  // namespace

std::string SpanCollector::SlowTracesJson() const {
  static const double kQuantiles[] = {0.5, 0.99, 0.999};
  static const char* kQuantileNames[] = {"p50", "p99", "p999"};
  std::ostringstream out;
  out << "{\"attribution\":{";
  bool first_op = true;
  for (size_t op = 0; op < static_cast<size_t>(SpanOp::kOpCount); ++op) {
    PhaseAttribution probe;
    if (!Attribution(static_cast<SpanOp>(op), 0.5, &probe)) {
      continue;
    }
    if (!first_op) {
      out << ",";
    }
    first_op = false;
    out << "\"" << SpanOpName(static_cast<SpanOp>(op)) << "\":{";
    for (size_t q = 0; q < 3; ++q) {
      PhaseAttribution attribution;
      Attribution(static_cast<SpanOp>(op), kQuantiles[q], &attribution);
      if (q > 0) {
        out << ",";
      }
      out << "\"" << kQuantileNames[q] << "\":{\"wall_cycles\":" << attribution.wall_cycles
          << ",\"coverage\":" << attribution.coverage;
      for (size_t p = 0; p < static_cast<size_t>(SpanPhase::kPhaseCount); ++p) {
        if (attribution.fraction[p] > 0) {
          out << ",\"" << SpanPhaseName(static_cast<SpanPhase>(p))
              << "\":" << attribution.fraction[p];
        }
      }
      out << "}";
    }
    out << "}";
  }
  out << "},\"slow\":[";
  const std::vector<SpanTree> trees = RetainedTrees();
  for (size_t i = 0; i < trees.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    AppendTreeJson(out, trees[i]);
  }
  out << "]}";
  return out.str();
}

std::string SpanCollector::AttributionText() const {
  static const double kQuantiles[] = {0.5, 0.99, 0.999};
  static const char* kQuantileNames[] = {"p50", "p99", "p99.9"};
  std::ostringstream out;
  for (size_t op = 0; op < static_cast<size_t>(SpanOp::kOpCount); ++op) {
    for (size_t q = 0; q < 3; ++q) {
      PhaseAttribution attribution;
      if (!Attribution(static_cast<SpanOp>(op), kQuantiles[q], &attribution)) {
        continue;
      }
      char line[256];
      std::snprintf(line, sizeof(line), "%-13s %-6s wall=%10llu cyc  coverage=%5.1f%%  ",
                    SpanOpName(static_cast<SpanOp>(op)), kQuantileNames[q],
                    static_cast<unsigned long long>(attribution.wall_cycles),
                    attribution.coverage * 100.0);
      out << line;
      bool first = true;
      for (size_t p = 0; p < static_cast<size_t>(SpanPhase::kPhaseCount); ++p) {
        if (attribution.fraction[p] < 0.005) {
          continue;
        }
        char part[64];
        std::snprintf(part, sizeof(part), "%s%s=%.0f%%", first ? "" : " ",
                      SpanPhaseName(static_cast<SpanPhase>(p)), attribution.fraction[p] * 100.0);
        out << part;
        first = false;
      }
      out << "\n";
    }
  }
  return out.str();
}

void SpanCollector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.clear();
  for (OpState& op_state : ops_) {
    op_state = OpState{};
  }
  slow_.clear();
  baseline_.clear();
  baseline_counter_ = 0;
  finalized_count_.store(0, std::memory_order_relaxed);
  sample_counter_.store(0, std::memory_order_relaxed);
}

#if AQUILA_TELEMETRY_ENABLED

namespace {
thread_local SpanContext tl_span_context;
}  // namespace

const SpanContext& CurrentSpanContext() { return tl_span_context; }

RequestSpan::RequestSpan(const SimClock& clock, SpanOp op, uint64_t arg)
    : clock_(&clock), arg_(arg), op_(op) {
  SpanCollector& collector = SpanCollector::Global();
  if (!collector.enabled()) {
    return;
  }
  if (tl_span_context.trace_id != 0) {
    // Already inside a sampled request (msync issued from a fault handler,
    // nested fault): record as a child of the enclosing span instead of
    // opening a second trace.
    nested_ = true;
    ctx_.trace_id = tl_span_context.trace_id;
    ctx_.span_id = collector.NextId();
  } else {
    if (!collector.ShouldSample()) {
      return;
    }
    const uint64_t trace_id = collector.NextId();
    if (!collector.BeginTrace(trace_id)) {
      return;
    }
    ctx_.trace_id = trace_id;
    ctx_.span_id = trace_id;  // the root span reuses the trace id
  }
  saved_ = tl_span_context;
  tl_span_context = ctx_;
  start_ = clock.Now();
  active_ = true;
}

RequestSpan::~RequestSpan() {
  if (!active_) {
    return;
  }
  tl_span_context = saved_;
  SpanRecord record;
  record.trace_id = ctx_.trace_id;
  record.span_id = ctx_.span_id;
  record.parent_id = nested_ ? saved_.span_id : 0;
  record.start_cycles = start_;
  record.end_cycles = clock_->Now();
  record.arg = arg_;
  record.phase = op_ == SpanOp::kMsync ? SpanPhase::kMsync : SpanPhase::kFault;
  record.op = op_;
  record.core = static_cast<uint16_t>(CoreRegistry::CurrentCore());
  SpanCollector& collector = SpanCollector::Global();
  if (nested_) {
    collector.Record(record);
  } else {
    collector.CloseRoot(record);
  }
}

ChildSpan::ChildSpan(const SimClock& clock, SpanPhase phase, uint64_t arg)
    : clock_(&clock), arg_(arg), phase_(phase) {
  if (tl_span_context.trace_id == 0) {
    return;  // not inside a sampled request: stay a two-load no-op
  }
  ctx_.trace_id = tl_span_context.trace_id;
  ctx_.span_id = SpanCollector::Global().NextId();
  saved_ = tl_span_context;
  tl_span_context = ctx_;
  start_ = clock.Now();
  active_ = true;
}

ChildSpan::~ChildSpan() {
  if (!active_) {
    return;
  }
  tl_span_context = saved_;
  SpanRecord record;
  record.trace_id = ctx_.trace_id;
  record.span_id = ctx_.span_id;
  record.parent_id = saved_.span_id;
  record.start_cycles = start_;
  record.end_cycles = clock_->Now();
  record.arg = arg_;
  record.phase = phase_;
  record.core = static_cast<uint16_t>(CoreRegistry::CurrentCore());
  SpanCollector::Global().Record(record);
}

#endif  // AQUILA_TELEMETRY_ENABLED

}  // namespace telemetry
}  // namespace aquila
