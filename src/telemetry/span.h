// Request-scoped causal tracing: span trees over the mmio request lifecycle.
//
// A RequestSpan opens at fault (or msync) entry and closes when the request
// returns; ChildSpans opened while it is active record where the request's
// simulated cycles went (cache lookup, queue wait, device, fill copy,
// eviction, shootdown, ...) as a tree — parent ids link children to the
// scope that caused them, so one slow request decomposes into phases that
// sum to its wall time. Because the simulated clock only advances inside
// charged sections, child spans that wrap those sections tile the root
// almost exactly; the residue ("self" time) is untimed bookkeeping.
//
// Cross-thread causality: async writeback/fill submissions capture the
// submitting request's SpanContext into the engine slot that rides the
// DeviceQueue submission (user_data identifies the slot); when the
// completion is reaped — typically by a *different* faulting thread — the
// reaper records a kDevice child span [submit_at, ready_at] against the
// ORIGINATING trace. A trace therefore stays open after its root closes
// until every async child it submitted has completed (pending_async
// refcount), so the tree is whole even when the device work outlives the
// fault that caused it.
//
// Retention (the tail-latency flight recorder): every finalized trace lands
// in per-op attribution reservoirs (wall time + per-phase direct-child
// cycles) used for the "p99 faults spend X% in device" exposition; whole
// span trees are kept only for (a) the top-K slowest traces per op, (b)
// traces slower than the configured slow threshold, and (c) a 1-in-N
// sampled baseline — everything else is discarded after the attribution
// summary is updated, so memory stays bounded no matter the run length.
//
// Sampling is off by default (Options::sample_every == 0): RequestSpan
// costs one relaxed atomic load and ChildSpan one thread-local read on the
// fault path. With AQUILA_TELEMETRY_ENABLED=0 both compile to empty
// objects; the collector keeps linking so exposition call sites work.
#ifndef AQUILA_SRC_TELEMETRY_SPAN_H_
#define AQUILA_SRC_TELEMETRY_SPAN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry_config.h"
#include "src/util/sim_clock.h"

namespace aquila {
namespace telemetry {

// Phases a request decomposes into. Roots use kFault/kMsync; everything
// else is a child phase.
enum class SpanPhase : uint8_t {
  kFault = 0,    // root: one page fault (major/minor/upgrade via SpanOp)
  kMsync,        // root: one msync call
  kCacheLookup,  // hash lookup, frame pin, alloc, translation install
  kLockWait,     // spinning on a frame claim or entry lock
  kQueueWait,    // waiting out an in-flight fill/writeback completion
  kDevice,       // time on the storage medium (sync read, async [submit,ready])
  kFillCopy,     // fill publication: identity stores, PTE install, hash insert
  kEvict,        // one eviction batch (children: writeback/shootdown/device)
  kWriteback,    // writeback submission (sync: includes device time)
  kShootdown,    // TLB shootdown rounds
  kDirtyTrack,   // dirty-tree collect/classify, write-upgrade bookkeeping
  kReadahead,    // readahead window issue
  kWatchdog,     // device watchdog actions: timeout sweep, retry, hedge
  kPark,         // cooperative scheduler: request suspended at a wait point
  kResume,       // cooperative scheduler: parked request resumed
  kPhaseCount,
};
const char* SpanPhaseName(SpanPhase phase);

// Request types with independent flight-recorder retention.
enum class SpanOp : uint8_t {
  kFaultMajor = 0,
  kFaultMinor,
  kFaultUpgrade,
  kMsync,
  kOpCount,
};
const char* SpanOpName(SpanOp op);

// (trace, span) identity carried across thread hops. trace_id == 0 means
// "not sampled" everywhere.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0: this record is the root
  uint64_t start_cycles = 0;
  uint64_t end_cycles = 0;
  uint64_t arg = 0;  // phase-specific payload (vaddr, batch size, offset...)
  SpanPhase phase = SpanPhase::kFault;
  SpanOp op = SpanOp::kFaultMajor;  // meaningful on root records
  uint16_t core = 0;
};

// One finalized request: the root plus every child recorded before (and
// every async child completed after) the root closed.
struct SpanTree {
  uint64_t trace_id = 0;
  SpanOp op = SpanOp::kFaultMajor;
  uint64_t wall_cycles = 0;                      // root end - root start
  uint64_t child_cycles = 0;                     // sum of root's direct children
  std::vector<SpanRecord> spans;                 // completion order; root last
};

// Per-op percentile attribution: fraction of wall time per phase for the
// requests around a latency percentile.
struct PhaseAttribution {
  uint64_t wall_cycles = 0;  // the percentile's wall time
  double fraction[static_cast<size_t>(SpanPhase::kPhaseCount)] = {};
  double coverage = 0;  // sum of direct-child cycles / wall
};

class SpanCollector {
 public:
  struct Options {
    // 1-in-N request sampling; 0 disables span tracing entirely.
    uint32_t sample_every = 0;
    // Finalized traces at least this slow keep their whole tree.
    uint64_t slow_threshold_cycles = 0;
    // Slowest whole trees retained per op type.
    uint32_t top_k = 8;
    // 1-in-N finalized traces kept as a baseline tree regardless of speed.
    uint32_t baseline_every = 64;
    // Concurrently open traces; new roots are dropped (counted) beyond this.
    uint32_t max_active = 256;
    // Records per trace; further children are dropped (counted).
    uint32_t max_spans_per_trace = 512;
    // Threshold-retained trees kept (oldest evicted first).
    uint32_t max_slow = 64;
    // Attribution reservoir size per op.
    uint32_t max_attribution_samples = 2048;
  };

  // The process-wide collector every span records into.
  static SpanCollector& Global();

  SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  void Configure(const Options& options);
  Options options() const;

  bool enabled() const { return sample_every_.load(std::memory_order_relaxed) != 0; }

  // 1-in-N sampling decision for a new request.
  bool ShouldSample();

  // Process-unique id for a new trace or span.
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  // Opens a trace (the caller already holds its fresh trace id). Returns
  // false (trace dropped, caller records nothing) when max_active is hit.
  bool BeginTrace(uint64_t trace_id);

  // Appends one finished child record to its (still open) trace.
  void Record(const SpanRecord& record);

  // Closes the root: the trace finalizes now, or — when async children are
  // still in flight — as soon as the last one completes.
  void CloseRoot(const SpanRecord& root);

  // Async child accounting across thread hops. NoteAsyncSubmitted is called
  // under the submitting request's context (root still open); CompleteAsync
  // records the device-phase child on the reaping thread and finalizes the
  // trace if it was only waiting for this completion.
  void NoteAsyncSubmitted(uint64_t trace_id);
  void CompleteAsync(const SpanContext& parent, SpanPhase phase, uint64_t start_cycles,
                     uint64_t end_cycles, uint64_t arg);

  // --- Exposition -------------------------------------------------------------
  // Retained whole trees (top-K + slow + baseline), slowest first.
  std::vector<SpanTree> RetainedTrees() const;
  // Per-op p50/p99/p99.9 attribution from the reservoirs.
  bool Attribution(SpanOp op, double quantile, PhaseAttribution* out) const;
  // {"attribution": {...}, "slow": [tree, ...]} for the stats server.
  std::string SlowTracesJson() const;
  // Human-readable attribution table (bench end-of-run report).
  std::string AttributionText() const;

  uint64_t finalized() const { return finalized_count_.load(std::memory_order_relaxed); }

  // Drops all state (tests / bench phase boundaries); keeps configuration.
  void Reset();

 private:
  struct ActiveTrace {
    std::vector<SpanRecord> spans;
    uint32_t pending_async = 0;
    bool root_closed = false;
    bool overflowed = false;  // hit max_spans_per_trace
  };

  struct AttributionSample {
    uint64_t wall = 0;
    uint64_t child_total = 0;
    uint64_t phase_cycles[static_cast<size_t>(SpanPhase::kPhaseCount)] = {};
  };

  struct OpState {
    std::vector<SpanTree> top;              // min-first by wall (top-K slowest)
    std::vector<AttributionSample> samples; // bounded reservoir
    uint64_t sample_seen = 0;               // reservoir admission counter
  };

  void FinalizeLocked(uint64_t trace_id, ActiveTrace&& trace);
  static AttributionSample Summarize(const SpanTree& tree);

  mutable std::mutex mu_;
  Options options_;                                        // guarded by mu_
  std::unordered_map<uint64_t, ActiveTrace> active_;       // guarded by mu_
  OpState ops_[static_cast<size_t>(SpanOp::kOpCount)];     // guarded by mu_
  std::deque<SpanTree> slow_;                              // guarded by mu_
  std::deque<SpanTree> baseline_;                          // guarded by mu_
  uint64_t baseline_counter_ = 0;                          // guarded by mu_
  uint64_t reservoir_rng_ = 0x9e3779b97f4a7c15ull;         // guarded by mu_

  std::atomic<uint32_t> sample_every_{0};
  std::atomic<uint64_t> sample_counter_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> finalized_count_{0};

  // Owned counters (registry-backed): started/finalized/dropped feed the
  // /metrics view and REQUIRED_NAMES.
  Counter* started_;
  Counter* finalized_;
  Counter* dropped_;
  Counter* retained_;
};

#if AQUILA_TELEMETRY_ENABLED

// The calling thread's current span context ({0,0} outside any sampled
// request). Captured by async submitters; restored by the RAII types below.
const SpanContext& CurrentSpanContext();

// Root span: samples, opens the trace, and makes itself the thread's
// current context for the request's duration. Op is classified at exit
// (a fault only learns major/minor/upgrade when it returns).
class RequestSpan {
 public:
  RequestSpan(const SimClock& clock, SpanOp op, uint64_t arg = 0);
  ~RequestSpan();

  RequestSpan(const RequestSpan&) = delete;
  RequestSpan& operator=(const RequestSpan&) = delete;

  bool active() const { return active_; }
  void set_op(SpanOp op) { op_ = op; }
  void set_arg(uint64_t arg) { arg_ = arg; }

 private:
  const SimClock* clock_;
  uint64_t start_ = 0;
  uint64_t arg_ = 0;
  SpanOp op_;
  SpanContext ctx_;
  SpanContext saved_;
  bool active_ = false;
  bool nested_ = false;  // opened inside another sampled request: plain child
};

// Child span: no-op unless the thread is inside a sampled request. Nests —
// children opened within become grandchildren of the enclosing span.
class ChildSpan {
 public:
  ChildSpan(const SimClock& clock, SpanPhase phase, uint64_t arg = 0);
  ~ChildSpan();

  ChildSpan(const ChildSpan&) = delete;
  ChildSpan& operator=(const ChildSpan&) = delete;

  void set_arg(uint64_t arg) { arg_ = arg; }

 private:
  const SimClock* clock_;
  uint64_t start_ = 0;
  uint64_t arg_ = 0;
  SpanPhase phase_;
  SpanContext ctx_;
  SpanContext saved_;
  bool active_ = false;
};

#else  // !AQUILA_TELEMETRY_ENABLED

inline const SpanContext& CurrentSpanContext() {
  static const SpanContext kNone;
  return kNone;
}

class RequestSpan {
 public:
  RequestSpan(const SimClock&, SpanOp, uint64_t = 0) {}
  bool active() const { return false; }
  void set_op(SpanOp) {}
  void set_arg(uint64_t) {}

  RequestSpan(const RequestSpan&) = delete;
  RequestSpan& operator=(const RequestSpan&) = delete;
};

class ChildSpan {
 public:
  ChildSpan(const SimClock&, SpanPhase, uint64_t = 0) {}
  void set_arg(uint64_t) {}

  ChildSpan(const ChildSpan&) = delete;
  ChildSpan& operator=(const ChildSpan&) = delete;
};

#endif  // AQUILA_TELEMETRY_ENABLED

}  // namespace telemetry
}  // namespace aquila

#endif  // AQUILA_SRC_TELEMETRY_SPAN_H_
