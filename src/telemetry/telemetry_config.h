// Compile-time switch for the telemetry layer.
//
// The build defines AQUILA_TELEMETRY_ENABLED=0 when the CMake option
// AQUILA_TELEMETRY is OFF; hot-path recording (Counter::Add, ScopedTimer,
// TraceSpan) then compiles to nothing. The MetricsRegistry itself always
// exists so exposition call sites keep linking in either configuration.
#ifndef AQUILA_SRC_TELEMETRY_TELEMETRY_CONFIG_H_
#define AQUILA_SRC_TELEMETRY_TELEMETRY_CONFIG_H_

#ifndef AQUILA_TELEMETRY_ENABLED
#define AQUILA_TELEMETRY_ENABLED 1
#endif

// Wraps a statement that should vanish when telemetry is compiled out.
#if AQUILA_TELEMETRY_ENABLED
#define AQUILA_TELEMETRY_ONLY(stmt) stmt
#else
#define AQUILA_TELEMETRY_ONLY(stmt)
#endif

#endif  // AQUILA_SRC_TELEMETRY_TELEMETRY_CONFIG_H_
