// RAII latency measurement into registry histograms.
//
// Two timebases:
//   - ScopedTimer      : simulated cycles from a SimClock — the runtime's
//                        native latency unit (device waits, trap costs and
//                        queueing all land in it). Use on any path that has
//                        a vCPU clock in hand.
//   - ScopedTscTimer   : real TSC cycles (ReadCyclesFenced) — for software
//                        paths executed for real that have no SimClock in
//                        scope (e.g. dirty-tree spinlock sections).
//
// Both compile to empty objects when AQUILA_TELEMETRY_ENABLED=0, so hot
// paths carry zero cost in the OFF configuration. RecordSpanSince() is the
// non-RAII form for paths with multiple classified exits (the fault handler
// doesn't know whether a fault is major or minor until it returns), and
// also emits the matching trace event when tracing is armed.
#ifndef AQUILA_SRC_TELEMETRY_SCOPED_TIMER_H_
#define AQUILA_SRC_TELEMETRY_SCOPED_TIMER_H_

#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry_config.h"
#include "src/telemetry/trace.h"
#include "src/util/cpu.h"
#include "src/util/histogram.h"
#include "src/util/sim_clock.h"

namespace aquila {
namespace telemetry {

class ScopedTimer {
 public:
#if AQUILA_TELEMETRY_ENABLED
  ScopedTimer(Histogram* histogram, const SimClock& clock)
      : histogram_(histogram), clock_(&clock), start_(clock.Now()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(clock_->Now() - start_);
    }
  }

 private:
  Histogram* histogram_;
  const SimClock* clock_;
  uint64_t start_;
#else
  ScopedTimer(Histogram*, const SimClock&) {}
#endif

 public:
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

class ScopedTscTimer {
 public:
#if AQUILA_TELEMETRY_ENABLED
  explicit ScopedTscTimer(Histogram* histogram)
      : histogram_(histogram), start_(ReadCyclesFenced()) {}
  ~ScopedTscTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(ReadCyclesFenced() - start_);
    }
  }

 private:
  Histogram* histogram_;
  uint64_t start_;
#else
  explicit ScopedTscTimer(Histogram*) {}
#endif

 public:
  ScopedTscTimer(const ScopedTscTimer&) = delete;
  ScopedTscTimer& operator=(const ScopedTscTimer&) = delete;
};

// Records `clock.Now() - start` into `histogram` and, when tracing is
// armed, a matching trace event. For paths that classify the span only at
// exit; `start` should be a clock.Now() captured at entry.
inline void RecordSpanSince(Histogram* histogram, TraceEventType type, const SimClock& clock,
                            uint64_t start, uint64_t arg = 0) {
#if AQUILA_TELEMETRY_ENABLED
  uint64_t duration = clock.Now() - start;
  if (histogram != nullptr) {
    histogram->Record(duration);
  }
  if (Tracer::Enabled()) {
    Tracer::Record(type, start, duration, arg);
  }
#else
  (void)histogram;
  (void)type;
  (void)clock;
  (void)start;
  (void)arg;
#endif
}

}  // namespace telemetry
}  // namespace aquila

#endif  // AQUILA_SRC_TELEMETRY_SCOPED_TIMER_H_
