#include "src/telemetry/trace.h"

#include <array>
#include <cstdio>
#include <memory>
#include <mutex>

#include "src/telemetry/metrics.h"
#include "src/util/cpu.h"

namespace aquila {
namespace telemetry {

namespace {

struct ThreadRing {
  // guarded-by: owning thread (single writer); readers (dump/collect)
  // tolerate tearing on the event payloads by design.
  std::array<TraceEvent, Tracer::kRingCapacity> events;
  // Total events recorded by the owning thread; slot = recorded % capacity.
  std::atomic<uint64_t> recorded{0};
  int tid = 0;  // guarded-by: written once under RingsMutex() at registration
};

std::mutex& RingsMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

// shared_ptr so a ring outlives its thread (events remain dumpable after
// worker threads join).
std::vector<std::shared_ptr<ThreadRing>>& Rings() {
  static auto* rings = new std::vector<std::shared_ptr<ThreadRing>>();
  return *rings;
}

ThreadRing& LocalRing() {
  static std::atomic<int> next_tid{0};
  // Registered once, process-lifetime (rings are never unregistered). The
  // callback takes RingsMutex *inside* the registry's snapshot lock; nothing
  // acquires them in the opposite order.
  static const bool drop_metric_registered = [] {
    Registry().RegisterCallback("aquila.trace.dropped_events", MetricKind::kCounter,
                                [] { return Tracer::DroppedEvents(); });
    return true;
  }();
  (void)drop_metric_registered;
  thread_local std::shared_ptr<ThreadRing> ring;
  if (ring == nullptr) {
    ring = std::make_shared<ThreadRing>();
    std::lock_guard<std::mutex> lock(RingsMutex());
    ring->tid = next_tid.fetch_add(1, std::memory_order_relaxed);
    Rings().push_back(ring);
  }
  return *ring;
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

const char* TraceEventName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFaultMajor: return "fault.major";
    case TraceEventType::kFaultMinor: return "fault.minor";
    case TraceEventType::kFaultUpgrade: return "fault.upgrade";
    case TraceEventType::kEvictBatch: return "evict.batch";
    case TraceEventType::kMsync: return "msync";
    case TraceEventType::kShootdown: return "tlb.shootdown";
    case TraceEventType::kVmcall: return "vmx.vmcall";
    case TraceEventType::kEptFault: return "vmx.ept_fault";
    case TraceEventType::kDeviceRead: return "device.read";
    case TraceEventType::kDeviceWrite: return "device.write";
    case TraceEventType::kDeviceReadBatch: return "device.read_batch";
    case TraceEventType::kDeviceWriteBatch: return "device.write_batch";
    case TraceEventType::kCompaction: return "kvs.compaction";
    case TraceEventType::kMemtableFlush: return "kvs.memtable_flush";
    case TraceEventType::kRingSubmit: return "io_ring.submit";
    case TraceEventType::kRealTrap: return "trap.real_fault";
    case TraceEventType::kTypeCount: break;
  }
  return "unknown";
}

void Tracer::SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

void Tracer::Record(TraceEventType type, uint64_t start_cycles, uint64_t duration_cycles,
                    uint64_t arg) {
  if (!Enabled()) {
    return;
  }
  ThreadRing& ring = LocalRing();
  uint64_t n = ring.recorded.load(std::memory_order_relaxed);
  TraceEvent& slot = ring.events[n % kRingCapacity];
  slot.start_cycles = start_cycles;
  slot.duration_cycles = duration_cycles;
  slot.arg = arg;
  slot.type = type;
  slot.core = static_cast<uint16_t>(CoreRegistry::CurrentCore());
  ring.recorded.store(n + 1, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::CollectAll() {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(RingsMutex());
  for (const auto& ring : Rings()) {
    uint64_t n = ring->recorded.load(std::memory_order_acquire);
    uint64_t retained = n < kRingCapacity ? n : kRingCapacity;
    uint64_t first = n - retained;
    for (uint64_t i = first; i < n; i++) {
      out.push_back(ring->events[i % kRingCapacity]);
    }
  }
  return out;
}

uint64_t Tracer::TotalRecorded() {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(RingsMutex());
  for (const auto& ring : Rings()) {
    total += ring->recorded.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Tracer::DroppedEvents() {
  uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(RingsMutex());
  for (const auto& ring : Rings()) {
    uint64_t n = ring->recorded.load(std::memory_order_relaxed);
    if (n > kRingCapacity) {
      dropped += n - kRingCapacity;
    }
  }
  return dropped;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(RingsMutex());
  for (const auto& ring : Rings()) {
    ring->recorded.store(0, std::memory_order_relaxed);
  }
}

std::string Tracer::DumpChromeTrace(uint64_t cycles_per_us) {
  if (cycles_per_us == 0) {
    cycles_per_us = 1;
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(RingsMutex());
  for (const auto& ring : Rings()) {
    uint64_t n = ring->recorded.load(std::memory_order_acquire);
    uint64_t retained = n < kRingCapacity ? n : kRingCapacity;
    for (uint64_t i = n - retained; i < n; i++) {
      const TraceEvent& e = ring->events[i % kRingCapacity];
      char buf[256];
      int len = std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"cat\":\"aquila\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"arg\":%llu,\"core\":%u}}",
          first ? "" : ",", TraceEventName(e.type),
          static_cast<double>(e.start_cycles) / static_cast<double>(cycles_per_us),
          static_cast<double>(e.duration_cycles) / static_cast<double>(cycles_per_us),
          ring->tid, static_cast<unsigned long long>(e.arg), e.core);
      out.append(buf, len);
      first = false;
    }
    if (n > kRingCapacity) {
      // Wraparound lost this thread's oldest events: say so in-band so a
      // truncated export is detectable in the viewer (name intentionally
      // mirrors the aquila.trace.dropped_events registry metric).
      char buf[192];
      int len = std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"trace.dropped_events\",\"cat\":\"aquila\",\"ph\":\"M\","
          "\"pid\":1,\"tid\":%d,\"args\":{\"dropped\":%llu}}",
          first ? "" : ",", ring->tid, static_cast<unsigned long long>(n - kRingCapacity));
      out.append(buf, len);
      first = false;
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace telemetry
}  // namespace aquila
