// Process-wide metrics registry: named counters, gauges, and latency
// histograms with one-call exposition.
//
// Naming convention: `aquila.<subsystem>.<name>`, lowercase [a-z0-9_]
// segments (validated by tools/check_metrics_names.py). Three metric
// flavors coexist:
//
//   - owned counters   : GetCounter("aquila.tlb.shootdown_pages")->Add(n).
//                        Hot-path recording is one relaxed atomic add; the
//                        returned pointer is stable for the process
//                        lifetime, so call sites cache it in a static.
//   - owned histograms : GetHistogram(...) returns a shared Histogram
//                        (src/util/histogram.h) for latency distributions.
//   - callbacks        : existing subsystems keep their own Stats structs
//                        (FaultStats, PageCache::Stats, DeviceStats, ...)
//                        and register a reader per field. Several instances
//                        may register the same name (one per PageCache, one
//                        per device, ...); Snapshot() sums them, so the
//                        exposition reports runtime-wide totals.
//
// Snapshot()/ToText()/ToJson() report everything at once: counters and
// gauges as values, histograms as count/mean/min/max/p50/p90/p99/p99.9.
// ToText() is Prometheus-style exposition ('.' mapped to '_'); ToJson() is
// a flat JSON object keyed by the dotted names.
#ifndef AQUILA_SRC_TELEMETRY_METRICS_H_
#define AQUILA_SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/telemetry/telemetry_config.h"
#include "src/util/cpu.h"
#include "src/util/histogram.h"

namespace aquila {
namespace telemetry {

enum class MetricKind { kCounter, kGauge, kHistogram };

// Monotonic counter. Recording is one relaxed atomic add (a no-op when
// telemetry is compiled out); the cache-line alignment keeps unrelated
// counters from false-sharing.
class Counter {
 public:
  void Add(uint64_t n = 1) {
#if AQUILA_TELEMETRY_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  alignas(kCacheLineSize) std::atomic<uint64_t> value_{0};
};

// Point-in-time digest of one histogram.
struct HistogramDigest {
  uint64_t count = 0;
  uint64_t sum = 0;
  double mean = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
};

struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t value = 0;       // counters and gauges
  HistogramDigest digest;   // histograms
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by name

  const MetricSample* Find(std::string_view name) const;
  std::string ToText() const;
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create an owned metric. The returned pointer never moves and
  // lives for the process lifetime.
  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Registers a reader for an externally-owned value (a Stats-struct atomic,
  // a size accessor, ...). Returns an id for Unregister; prefer
  // CallbackGroup for RAII lifetime management. Callbacks sharing a name are
  // summed in Snapshot().
  uint64_t RegisterCallback(std::string_view name, MetricKind kind,
                            std::function<uint64_t()> reader);
  void Unregister(uint64_t id);

  MetricsSnapshot Snapshot() const;
  std::string ToText() const { return Snapshot().ToText(); }
  std::string ToJson() const { return Snapshot().ToJson(); }

  // Zeroes owned counters and histograms (callback-backed values belong to
  // their owners). For benchmarks that report per-phase deltas.
  void ResetOwned();

  // `aquila.<subsystem>.<name>`: >= 3 dot-separated [a-z0-9_]+ segments.
  static bool ValidName(std::string_view name);

 private:
  struct Callback {
    uint64_t id;
    std::string name;
    MetricKind kind;
    std::function<uint64_t()> reader;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<Callback> callbacks_;
  uint64_t next_id_ = 1;
};

// The process-wide registry every subsystem records into.
MetricsRegistry& Registry();

// RAII bundle of callback registrations: a subsystem object owns one,
// Add()s its Stats fields at construction, and deregisters everything when
// it dies (so a destroyed PageCache stops being reported).
class CallbackGroup {
 public:
  CallbackGroup() = default;
  ~CallbackGroup() { Clear(); }

  CallbackGroup(const CallbackGroup&) = delete;
  CallbackGroup& operator=(const CallbackGroup&) = delete;

  void Add(std::string_view name, MetricKind kind, std::function<uint64_t()> reader) {
    ids_.push_back(Registry().RegisterCallback(name, kind, std::move(reader)));
  }
  void AddCounter(std::string_view name, const std::atomic<uint64_t>& value) {
    Add(name, MetricKind::kCounter,
        [&value] { return value.load(std::memory_order_relaxed); });
  }
  void AddGauge(std::string_view name, std::function<uint64_t()> reader) {
    Add(name, MetricKind::kGauge, std::move(reader));
  }

  void Clear() {
    for (uint64_t id : ids_) {
      Registry().Unregister(id);
    }
    ids_.clear();
  }

 private:
  std::vector<uint64_t> ids_;
};

}  // namespace telemetry
}  // namespace aquila

#endif  // AQUILA_SRC_TELEMETRY_METRICS_H_
