#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "src/util/logging.h"

namespace aquila {
namespace telemetry {

namespace {

// Prometheus metric names use '_' where ours use '.'.
std::string PromName(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

void AppendF(std::string* out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

HistogramDigest DigestOf(const Histogram& h) {
  HistogramDigest d;
  d.count = h.Count();
  d.sum = h.Sum();
  d.mean = h.Mean();
  d.min = h.Min();
  d.max = h.Max();
  d.p50 = h.Percentile(0.50);
  d.p90 = h.Percentile(0.90);
  d.p99 = h.Percentile(0.99);
  d.p999 = h.Percentile(0.999);
  return d;
}

}  // namespace

const MetricSample* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  out.reserve(samples.size() * 160);
  for (const MetricSample& s : samples) {
    std::string prom = PromName(s.name);
    // Exposition-format comment order: HELP then TYPE then the samples. The
    // help text carries the dotted registry name (the '.' -> '_' mapping is
    // lossy, so this is where a scraper learns the original name to grep
    // for) and what flavor of value the series is.
    switch (s.kind) {
      case MetricKind::kCounter:
        AppendF(&out, "# HELP %s Aquila metric %s (monotonic counter).\n", prom.c_str(),
                s.name.c_str());
        AppendF(&out, "# TYPE %s counter\n%s %llu\n", prom.c_str(), prom.c_str(),
                static_cast<unsigned long long>(s.value));
        break;
      case MetricKind::kGauge:
        AppendF(&out, "# HELP %s Aquila metric %s (point-in-time gauge).\n", prom.c_str(),
                s.name.c_str());
        AppendF(&out, "# TYPE %s gauge\n%s %llu\n", prom.c_str(), prom.c_str(),
                static_cast<unsigned long long>(s.value));
        break;
      case MetricKind::kHistogram:
        AppendF(&out, "# HELP %s Aquila metric %s (latency summary, simulated cycles).\n",
                prom.c_str(), s.name.c_str());
        AppendF(&out, "# TYPE %s summary\n", prom.c_str());
        AppendF(&out, "%s{quantile=\"0.5\"} %llu\n", prom.c_str(),
                static_cast<unsigned long long>(s.digest.p50));
        AppendF(&out, "%s{quantile=\"0.9\"} %llu\n", prom.c_str(),
                static_cast<unsigned long long>(s.digest.p90));
        AppendF(&out, "%s{quantile=\"0.99\"} %llu\n", prom.c_str(),
                static_cast<unsigned long long>(s.digest.p99));
        AppendF(&out, "%s{quantile=\"0.999\"} %llu\n", prom.c_str(),
                static_cast<unsigned long long>(s.digest.p999));
        AppendF(&out, "%s_sum %llu\n%s_count %llu\n", prom.c_str(),
                static_cast<unsigned long long>(s.digest.sum), prom.c_str(),
                static_cast<unsigned long long>(s.digest.count));
        break;
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) {
      out += ",";
    }
    first = false;
    if (s.kind == MetricKind::kHistogram) {
      AppendF(&out,
              "\"%s\":{\"count\":%llu,\"mean\":%.1f,\"min\":%llu,\"max\":%llu,"
              "\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,\"p999\":%llu}",
              s.name.c_str(), static_cast<unsigned long long>(s.digest.count), s.digest.mean,
              static_cast<unsigned long long>(s.digest.min),
              static_cast<unsigned long long>(s.digest.max),
              static_cast<unsigned long long>(s.digest.p50),
              static_cast<unsigned long long>(s.digest.p90),
              static_cast<unsigned long long>(s.digest.p99),
              static_cast<unsigned long long>(s.digest.p999));
    } else {
      AppendF(&out, "\"%s\":%llu", s.name.c_str(), static_cast<unsigned long long>(s.value));
    }
  }
  out += "}";
  return out;
}

bool MetricsRegistry::ValidName(std::string_view name) {
  int segments = 0;
  size_t seg_len = 0;
  for (size_t i = 0; i <= name.size(); i++) {
    if (i == name.size() || name[i] == '.') {
      if (seg_len == 0) {
        return false;
      }
      segments++;
      seg_len = 0;
      continue;
    }
    char c = name[i];
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
    seg_len++;
  }
  return segments >= 3 && name.substr(0, 7) == "aquila.";
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  AQUILA_DCHECK(ValidName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  AQUILA_DCHECK(ValidName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::RegisterCallback(std::string_view name, MetricKind kind,
                                           std::function<uint64_t()> reader) {
  AQUILA_DCHECK(ValidName(name));
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  callbacks_.push_back(Callback{id, std::string(name), kind, std::move(reader)});
  return id;
}

void MetricsRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < callbacks_.size(); i++) {
    if (callbacks_[i].id == id) {
      callbacks_[i] = std::move(callbacks_.back());
      callbacks_.pop_back();
      return;
    }
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  // name -> (kind, summed value). Owned counters and same-named callbacks
  // (one per subsystem instance) merge into one runtime-wide total.
  std::map<std::string, MetricSample> merged;
  for (const auto& [name, counter] : counters_) {
    MetricSample& s = merged[name];
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.value += counter->Value();
  }
  for (const Callback& cb : callbacks_) {
    MetricSample& s = merged[cb.name];
    s.name = cb.name;
    s.kind = cb.kind;
    s.value += cb.reader();
  }
  MetricsSnapshot snapshot;
  snapshot.samples.reserve(merged.size() + histograms_.size());
  for (auto& [name, sample] : merged) {
    snapshot.samples.push_back(std::move(sample));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.digest = DigestOf(*hist);
    snapshot.samples.push_back(std::move(s));
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return snapshot;
}

void MetricsRegistry::ResetOwned() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, hist] : histograms_) {
    hist->Reset();
  }
}

MetricsRegistry& Registry() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace telemetry
}  // namespace aquila
