// Minimal live stats endpoint: one thread, blocking sockets, no deps.
//
// Serves the telemetry surface over HTTP/1.0 on 127.0.0.1 so a running
// benchmark or serving harness can be inspected without touching its
// process: `curl :PORT/metrics` scrapes Prometheus exposition mid-run.
//
//   /metrics       Prometheus text exposition (MetricsRegistry::ToText)
//   /metrics.json  flat JSON of the same snapshot
//   /traces        Chrome trace-event JSON from the ring tracer
//   /slow          flight-recorder span trees + percentile attribution
//   /health        per-device health state machines (provider-installed)
//
// One connection is served at a time, each request on a fresh connection
// (Connection: close). Every handler takes a snapshot under the relevant
// subsystem lock and serializes outside the hot path, so scraping perturbs
// the workload no more than an AQUILA_METRICS dump at exit would.
//
// Off by default; enabled via Aquila::Options::stats_server_port or
// AQUILA_STATS_PORT (benches). Port 0 binds an ephemeral port (the chosen
// one is reported by port() and logged by the bench harness).
#ifndef AQUILA_SRC_TELEMETRY_STATS_SERVER_H_
#define AQUILA_SRC_TELEMETRY_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

namespace aquila {
namespace telemetry {

// /health body provider. The storage layer installs its device-health
// registry serializer here at first use, keeping the dependency arrow
// storage -> telemetry (this header knows nothing about devices). Thread
// safe; last install wins.
void SetHealthJsonProvider(std::function<std::string()> provider);

// The installed provider's output, or a stub body when none is installed.
std::string HealthJson();

class StatsServer {
 public:
  struct Options {
    int port = 0;                  // 0: bind an ephemeral port
    uint64_t cycles_per_us = 2400; // sim-cycle -> us conversion for /traces
  };

  // Binds 127.0.0.1:<port> and starts the serving thread. Returns nullptr
  // (with a reason in *error) if the socket cannot be set up — callers treat
  // that as "stats unavailable", never fatal.
  static std::unique_ptr<StatsServer> Start(const Options& options, std::string* error = nullptr);

  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // The bound port (resolves ephemeral binds).
  int port() const { return port_; }

 private:
  explicit StatsServer(const Options& options) : options_(options) {}

  void Serve();
  void HandleConnection(int fd);

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace telemetry
}  // namespace aquila

#endif  // AQUILA_SRC_TELEMETRY_STATS_SERVER_H_
