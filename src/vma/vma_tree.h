// Scalable virtual-memory-area management (§3.4).
//
// Linux guards its VMA red-black tree with a single read-write semaphore;
// even read acquisitions limit many-core scalability. Following RadixVM,
// Aquila replaces the tree with a radix tree over page indices, which gives
// two things to the fault path:
//   (1) a lock-free validity lookup (is this address mapped, and by what?);
//   (2) a per-page entry lock that serializes concurrent faults/evictions
//       on the SAME page without any shared lock across different pages.
// Range updates (mmap/munmap) walk the affected entries only; they touch no
// global state, so an mmap in one part of the address space never stalls
// faults in another.
//
// A leaf entry packs the owning Vma pointer with a lock bit in bit 0
// (pointers are 8-aligned). Interior nodes are installed with CAS and are
// only reclaimed at tree destruction, keeping the fault path free of
// lifetime hazards (the paper likewise forgoes RadixVM's refcache, §3.4).
#ifndef AQUILA_SRC_VMA_VMA_TREE_H_
#define AQUILA_SRC_VMA_VMA_TREE_H_

#include <atomic>
#include <cstdint>

#include "src/util/bitops.h"
#include "src/util/status.h"

namespace aquila {

// One mapping created by mmap. The mmio layer owns these; the tree stores
// non-owning pointers.
struct Vma {
  uint64_t start_page = 0;  // first page index (vaddr >> 12)
  uint64_t page_count = 0;
  int prot = 0;  // kProtRead | kProtWrite
  uint64_t mapping_id = 0;
  uint64_t file_offset = 0;  // backing offset of start_page
  void* backing = nullptr;   // the mmio region that owns this mapping
};

inline constexpr int kProtRead = 1;
inline constexpr int kProtWrite = 2;

class VmaTree {
 public:
  VmaTree();
  ~VmaTree();

  VmaTree(const VmaTree&) = delete;
  VmaTree& operator=(const VmaTree&) = delete;

  // Registers `vma` for every page in its range. Fails without side effects
  // if any page is already mapped.
  Status Insert(Vma* vma);

  // Unregisters `vma`'s pages. Acquires each entry lock, so in-flight faults
  // on those pages drain first.
  Status Remove(Vma* vma);

  // Lock-free validity lookup (no entry lock taken).
  Vma* Find(uint64_t page) const;

  // Fault path: looks up `page` and acquires its entry lock. Returns null
  // (no lock held) for unmapped addresses.
  Vma* LockEntry(uint64_t page);

  // Non-blocking variant for evictors (lock-ordering safety): returns false
  // if the entry is locked or unmapped.
  bool TryLockEntry(uint64_t page, Vma** vma);

  void UnlockEntry(uint64_t page);

  uint64_t mapped_pages() const { return mapped_pages_.load(std::memory_order_relaxed); }

 private:
  static constexpr int kLevels = 4;  // 9*4 = 36 bits of page index (48-bit VA)
  static constexpr int kEntriesPerNode = 512;
  static constexpr uint64_t kLockBit = 1;

  struct Node;

  static int IndexAt(uint64_t page, int level) {
    return static_cast<int>((page >> (9 * level)) & (kEntriesPerNode - 1));
  }

  Node* EnsureChild(Node* node, int index);
  std::atomic<uint64_t>* SlotFor(uint64_t page, bool create) const;
  static void FreeRecursive(Node* node, int level);

  Node* root_;
  std::atomic<uint64_t> mapped_pages_{0};
};

// Process-wide virtual-address allocator for mmio mappings. Hands out
// page-aligned ranges with one-page guard gaps; ranges are not recycled
// (address space is plentiful and reuse would reintroduce ABA hazards).
class VaAllocator {
 public:
  // mmio mappings live high in the canonical lower half.
  static constexpr uint64_t kBase = 0x500000000000ull;

  // Returns the start address (not page index) of a fresh range.
  uint64_t Allocate(uint64_t pages) {
    uint64_t span = (pages + 1) * kPageSize;  // +1 guard page
    return next_.fetch_add(span, std::memory_order_relaxed);
  }

  // Like Allocate, but the returned start is aligned to `align_pages` pages.
  // Huge-page mappings use this so every 2 MB file span coincides with one
  // level-1 page-table slot. Over-reserves by the alignment; the skipped
  // gap doubles as guard space.
  uint64_t AllocateAligned(uint64_t pages, uint64_t align_pages) {
    uint64_t span = (pages + align_pages + 1) * kPageSize;
    uint64_t base = next_.fetch_add(span, std::memory_order_relaxed);
    return AlignUp(base, align_pages * kPageSize);
  }

 private:
  std::atomic<uint64_t> next_{kBase};
};

}  // namespace aquila

#endif  // AQUILA_SRC_VMA_VMA_TREE_H_
