#include "src/vma/vma_tree.h"

#include <array>

#include "src/util/cpu.h"
#include "src/util/logging.h"

namespace aquila {

struct VmaTree::Node {
  std::array<std::atomic<uint64_t>, kEntriesPerNode> slots{};
};

VmaTree::VmaTree() : root_(new Node()) {}

VmaTree::~VmaTree() { FreeRecursive(root_, kLevels - 1); }

void VmaTree::FreeRecursive(Node* node, int level) {
  if (level > 0) {
    for (auto& slot : node->slots) {
      uint64_t child = slot.load(std::memory_order_relaxed);
      if (child != 0) {
        FreeRecursive(reinterpret_cast<Node*>(child), level - 1);
      }
    }
  }
  delete node;
}

VmaTree::Node* VmaTree::EnsureChild(Node* node, int index) {
  uint64_t child = node->slots[index].load(std::memory_order_acquire);
  if (child != 0) {
    return reinterpret_cast<Node*>(child);
  }
  Node* fresh = new Node();
  uint64_t expected = 0;
  if (node->slots[index].compare_exchange_strong(expected, reinterpret_cast<uint64_t>(fresh),
                                                 std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;
  return reinterpret_cast<Node*>(expected);
}

std::atomic<uint64_t>* VmaTree::SlotFor(uint64_t page, bool create) const {
  AQUILA_DCHECK(page < (1ull << (9 * kLevels)));
  Node* node = root_;
  auto* self = const_cast<VmaTree*>(this);
  for (int level = kLevels - 1; level > 0; level--) {
    int index = IndexAt(page, level);
    if (create) {
      node = self->EnsureChild(node, index);
    } else {
      uint64_t child = node->slots[index].load(std::memory_order_acquire);
      if (child == 0) {
        return nullptr;
      }
      node = reinterpret_cast<Node*>(child);
    }
  }
  return const_cast<std::atomic<uint64_t>*>(&node->slots[IndexAt(page, 0)]);
}

Status VmaTree::Insert(Vma* vma) {
  AQUILA_CHECK((reinterpret_cast<uintptr_t>(vma) & 7) == 0);
  uint64_t installed = 0;
  for (uint64_t i = 0; i < vma->page_count; i++) {
    std::atomic<uint64_t>* slot = SlotFor(vma->start_page + i, /*create=*/true);
    uint64_t expected = 0;
    if (!slot->compare_exchange_strong(expected, reinterpret_cast<uint64_t>(vma),
                                       std::memory_order_acq_rel)) {
      // Roll back what we installed.
      for (uint64_t j = 0; j < installed; j++) {
        SlotFor(vma->start_page + j, false)->store(0, std::memory_order_release);
      }
      return Status::AlreadyExists("address range already mapped");
    }
    installed++;
  }
  mapped_pages_.fetch_add(vma->page_count, std::memory_order_relaxed);
  return Status::Ok();
}

Status VmaTree::Remove(Vma* vma) {
  for (uint64_t i = 0; i < vma->page_count; i++) {
    uint64_t page = vma->start_page + i;
    std::atomic<uint64_t>* slot = SlotFor(page, false);
    if (slot == nullptr) {
      return Status::NotFound("page not mapped");
    }
    // Acquire the entry lock before clearing so in-flight faults drain.
    uint64_t expected = reinterpret_cast<uint64_t>(vma);
    SpinBackoff backoff;
    while (!slot->compare_exchange_weak(expected, expected | kLockBit,
                                        std::memory_order_acquire)) {
      if ((expected & ~kLockBit) != reinterpret_cast<uint64_t>(vma)) {
        return Status::NotFound("page mapped by a different vma");
      }
      expected &= ~kLockBit;  // entry currently locked by a fault; retry
      backoff.Pause();
    }
    slot->store(0, std::memory_order_release);
  }
  mapped_pages_.fetch_sub(vma->page_count, std::memory_order_relaxed);
  return Status::Ok();
}

Vma* VmaTree::Find(uint64_t page) const {
  std::atomic<uint64_t>* slot = SlotFor(page, false);
  if (slot == nullptr) {
    return nullptr;
  }
  return reinterpret_cast<Vma*>(slot->load(std::memory_order_acquire) & ~kLockBit);
}

Vma* VmaTree::LockEntry(uint64_t page) {
  std::atomic<uint64_t>* slot = SlotFor(page, false);
  if (slot == nullptr) {
    return nullptr;
  }
  SpinBackoff backoff;
  while (true) {
    uint64_t value = slot->load(std::memory_order_acquire);
    uint64_t ptr = value & ~kLockBit;
    if (ptr == 0) {
      return nullptr;
    }
    if ((value & kLockBit) == 0 &&
        slot->compare_exchange_weak(value, value | kLockBit, std::memory_order_acquire)) {
      return reinterpret_cast<Vma*>(ptr);
    }
    backoff.Pause();
  }
}

bool VmaTree::TryLockEntry(uint64_t page, Vma** vma) {
  std::atomic<uint64_t>* slot = SlotFor(page, false);
  if (slot == nullptr) {
    return false;
  }
  uint64_t value = slot->load(std::memory_order_acquire);
  uint64_t ptr = value & ~kLockBit;
  if (ptr == 0 || (value & kLockBit) != 0) {
    return false;
  }
  if (!slot->compare_exchange_strong(value, value | kLockBit, std::memory_order_acquire)) {
    return false;
  }
  *vma = reinterpret_cast<Vma*>(ptr);
  return true;
}

void VmaTree::UnlockEntry(uint64_t page) {
  std::atomic<uint64_t>* slot = SlotFor(page, false);
  AQUILA_CHECK(slot != nullptr);
  uint64_t value = slot->load(std::memory_order_relaxed);
  AQUILA_DCHECK((value & kLockBit) != 0);
  slot->store(value & ~kLockBit, std::memory_order_release);
}

}  // namespace aquila
