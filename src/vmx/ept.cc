#include "src/vmx/ept.h"

#include "src/util/bitops.h"

namespace aquila {

Status ExtendedPageTable::Map(uint64_t gpa, uint64_t hpa, uint64_t size, uint64_t page_size) {
  if (size == 0 || !IsPowerOfTwo(page_size) || !IsAligned(gpa, page_size) ||
      !IsAligned(size, page_size)) {
    return Status::InvalidArgument("EPT mapping not aligned to page size");
  }
  ExclusiveLockGuard guard(lock_);
  // Overlap check: the first entry at or after gpa, and the one before it.
  auto next = entries_.lower_bound(gpa);
  if (next != entries_.end() && next->first < gpa + size) {
    return Status::AlreadyExists("EPT range overlaps existing mapping");
  }
  if (next != entries_.begin()) {
    auto prev = std::prev(next);
    if (prev->second.gpa + prev->second.size > gpa) {
      return Status::AlreadyExists("EPT range overlaps existing mapping");
    }
  }
  entries_[gpa] = Mapping{gpa, hpa, size, page_size};
  mapped_bytes_.fetch_add(size, std::memory_order_relaxed);
  return Status::Ok();
}

Status ExtendedPageTable::Unmap(uint64_t gpa, uint64_t size) {
  ExclusiveLockGuard guard(lock_);
  auto it = entries_.lower_bound(gpa);
  uint64_t end = gpa + size;
  while (it != entries_.end() && it->first < end) {
    if (it->second.gpa < gpa || it->second.gpa + it->second.size > end) {
      return Status::InvalidArgument("EPT unmap would split a mapping");
    }
    mapped_bytes_.fetch_sub(it->second.size, std::memory_order_relaxed);
    it = entries_.erase(it);
  }
  return Status::Ok();
}

bool ExtendedPageTable::Translate(uint64_t gpa, uint64_t* hpa) const {
  SharedLockGuard guard(lock_);
  auto it = entries_.upper_bound(gpa);
  if (it == entries_.begin()) {
    return false;
  }
  --it;
  const Mapping& m = it->second;
  if (gpa < m.gpa || gpa >= m.gpa + m.size) {
    return false;
  }
  *hpa = m.hpa + (gpa - m.gpa);
  return true;
}

uint64_t ExtendedPageTable::MappedPageSize(uint64_t gpa) const {
  SharedLockGuard guard(lock_);
  auto it = entries_.upper_bound(gpa);
  if (it == entries_.begin()) {
    return 0;
  }
  --it;
  const Mapping& m = it->second;
  if (gpa < m.gpa || gpa >= m.gpa + m.size) {
    return 0;
  }
  return m.page_size;
}

uint64_t ExtendedPageTable::EntryCount() const {
  SharedLockGuard guard(lock_);
  return entries_.size();
}

}  // namespace aquila
