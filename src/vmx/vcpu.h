// Per-thread virtual CPU: protection-domain state and transition accounting.
//
// Every thread that enters the Aquila runtime (or the Linux-baseline
// simulator) owns a Vcpu. The Vcpu records which privilege transitions the
// thread performs and charges their modeled cost to the thread's simulated
// clock. The counters let tests assert structural properties ("a hit takes
// zero transitions", "an Aquila fault takes one ring-0 exception and no
// vmexit") independent of timing.
#ifndef AQUILA_SRC_VMX_VCPU_H_
#define AQUILA_SRC_VMX_VCPU_H_

#include <cstdint>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/util/cpu.h"
#include "src/util/sim_clock.h"
#include "src/vmx/cost_model.h"

namespace aquila {

// Process-wide privilege-transition counters (vCPUs are per-thread and die
// with their threads, so the registry aggregates here instead of per-Vcpu
// callbacks). Defined in vcpu.cc.
struct VcpuGlobalMetrics {
  telemetry::Counter* ring3_traps;
  telemetry::Counter* ring0_exceptions;
  telemetry::Counter* syscalls;
  telemetry::Counter* vmexits;
  telemetry::Counter* vmcalls;
  telemetry::Counter* ept_faults;
};
const VcpuGlobalMetrics& VcpuMetrics();

enum class CpuMode {
  kHostUser,   // VMX root, ring 3 (normal Linux application)
  kHostKernel, // VMX root, ring 0 (host kernel / hypervisor)
  kGuestRing0, // VMX non-root, ring 0 (Aquila + application)
};

class Vcpu {
 public:
  struct Counters {
    uint64_t ring3_traps = 0;      // ring3 -> ring0 protection-domain switches
    uint64_t ring0_exceptions = 0; // exceptions taken within non-root ring 0
    uint64_t syscalls = 0;         // host syscalls (explicit I/O baseline)
    uint64_t vmexits = 0;          // vmexit/vmentry round trips
    uint64_t vmcalls = 0;          // explicit hypercalls (subset of vmexits)
    uint64_t ept_faults = 0;
  };

  explicit Vcpu(int core_id) : core_(core_id) {}

  int core() const { return core_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  const Counters& counters() const { return counters_; }
  CpuMode mode() const { return mode_; }
  void set_mode(CpuMode mode) { mode_ = mode; }

  // Linux baseline: page fault or syscall trap from ring 3 into the host
  // kernel and back (1287 cycles, excluding the handler body).
  void ChargeRing3Trap() {
    counters_.ring3_traps++;
    VcpuMetrics().ring3_traps->Add();
    clock_.Charge(CostCategory::kTrap, GlobalCostModel().ring3_trap);
  }

  // Aquila: exception taken and returned within non-root ring 0 (552 cycles).
  void ChargeRing0Exception() {
    counters_.ring0_exceptions++;
    VcpuMetrics().ring0_exceptions->Add();
    clock_.Charge(CostCategory::kTrap, GlobalCostModel().ring0_exception);
  }

  // Host syscall entry/exit pair (explicit read/write I/O path).
  void ChargeSyscall() {
    counters_.syscalls++;
    VcpuMetrics().syscalls->Add();
    clock_.Charge(CostCategory::kSyscall, GlobalCostModel().syscall_entry_exit);
  }

  // vmexit + vmentry round trip.
  void ChargeVmexit() {
    counters_.vmexits++;
    VcpuMetrics().vmexits->Add();
    clock_.Charge(CostCategory::kVmExit, GlobalCostModel().vmexit_roundtrip);
  }

  // Explicit hypercall: vmexit round trip plus hypervisor dispatch.
  void ChargeVmcall() {
    counters_.vmcalls++;
    counters_.vmexits++;
    VcpuMetrics().vmcalls->Add();
    VcpuMetrics().vmexits->Add();
    const CostModel& costs = GlobalCostModel();
    telemetry::TraceSpan span(telemetry::TraceEventType::kVmcall, clock_);
    clock_.Charge(CostCategory::kVmExit, costs.vmexit_roundtrip + costs.vmcall_dispatch);
  }

  // EPT violation: vmexit + hypervisor walk + translation install.
  void ChargeEptFault() {
    counters_.ept_faults++;
    counters_.vmexits++;
    VcpuMetrics().ept_faults->Add();
    VcpuMetrics().vmexits->Add();
    telemetry::TraceSpan span(telemetry::TraceEventType::kEptFault, clock_);
    clock_.Charge(CostCategory::kVmExit, GlobalCostModel().ept_fault);
  }

  void ResetCounters() { counters_ = Counters{}; }

 private:
  int core_;
  CpuMode mode_ = CpuMode::kHostUser;
  SimClock clock_;
  Counters counters_;
};

// The calling thread's Vcpu, created on first use with the thread's logical
// core id. One per OS thread for the process lifetime.
Vcpu& ThisVcpu();

}  // namespace aquila

#endif  // AQUILA_SRC_VMX_VCPU_H_
