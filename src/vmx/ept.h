// Software Extended Page Table: GPA -> HPA translation under hypervisor
// control (Intel VT-x second-level translation, §2.2/§3.5 of the paper).
//
// Mappings are contiguous ranges installed at a declared hardware page size
// (4 KB / 2 MB / 1 GB). Aquila uses one EPT per *process* (the paper modifies
// Dune's per-thread EPT, §3.5), so the structure is thread-safe: lookups take
// a shared lock, installs an exclusive one. Lookups are off the data path —
// the cache layer resolves a frame's host pointer once per frame — so this
// is not performance-critical in the simulation.
#ifndef AQUILA_SRC_VMX_EPT_H_
#define AQUILA_SRC_VMX_EPT_H_

#include <cstdint>
#include <map>

#include "src/util/spinlock.h"
#include "src/util/status.h"

namespace aquila {

class ExtendedPageTable {
 public:
  struct Mapping {
    uint64_t gpa = 0;
    uint64_t hpa = 0;
    uint64_t size = 0;       // extent of the mapping in bytes
    uint64_t page_size = 0;  // hardware page size used (4K / 2M / 1G)
  };

  // Installs a contiguous GPA->HPA range. Fails if it overlaps an existing
  // mapping or is not aligned to `page_size`.
  Status Map(uint64_t gpa, uint64_t hpa, uint64_t size, uint64_t page_size);

  // Removes mappings fully contained in [gpa, gpa + size). Partial overlap
  // with an installed mapping is an error (hardware cannot split a huge page
  // without hypervisor help).
  Status Unmap(uint64_t gpa, uint64_t size);

  // Translates a guest-physical address. Returns false on an EPT violation
  // (the caller raises an EPT fault through the hypervisor).
  bool Translate(uint64_t gpa, uint64_t* hpa) const;

  // Hardware page size of the mapping covering `gpa`, 0 if unmapped. The
  // huge-page promotion path uses this to assert that a 2 MB frame run is
  // covered by a single large-page mapping (chunk-granular backing makes
  // any 2 MB-aligned run fall inside one entry).
  uint64_t MappedPageSize(uint64_t gpa) const;

  uint64_t MappedBytes() const { return mapped_bytes_.load(std::memory_order_relaxed); }
  uint64_t EntryCount() const;

 private:
  mutable RwSpinLock lock_;
  std::map<uint64_t, Mapping> entries_;  // keyed by gpa start
  std::atomic<uint64_t> mapped_bytes_{0};
};

}  // namespace aquila

#endif  // AQUILA_SRC_VMX_EPT_H_
