#include "src/vmx/ipi.h"

#include "src/util/logging.h"

namespace aquila {

PostedIpiFabric::PostedIpiFabric(SendPath path) : send_path_(path) {
  metrics_.AddCounter("aquila.vmx.ipi_sent", total_sent_);
  metrics_.AddCounter("aquila.vmx.ipi_throttled", total_throttled_);
  metrics_.Add("aquila.vmx.ipi_received", telemetry::MetricKind::kCounter, [this] {
    uint64_t received = 0;
    for (const Mailbox& box : mailboxes_) {
      received += box.received.load(std::memory_order_relaxed);
    }
    return received;
  });
}

void PostedIpiFabric::Send(SimClock& sender, int target_core, uint64_t handler_cycles) {
  AQUILA_CHECK(target_core >= 0 && target_core < CoreRegistry::kMaxCores);
  const CostModel& costs = GlobalCostModel();

  int sender_core = CoreRegistry::CurrentCore();
  if (rate_limit_per_ms_ != 0) {
    // Token-bucket per sender over simulated time; exceeding the limit stalls
    // the sender in the hypervisor until the next window.
    SenderBucket& bucket = buckets_[sender_core];
    uint64_t window_cycles = GlobalCostModel().cycles_per_us * 1000;
    uint64_t now = sender.Now();
    if (now - bucket.window_start >= window_cycles) {
      bucket.window_start = now;
      bucket.sends_in_window = 0;
    }
    if (++bucket.sends_in_window > rate_limit_per_ms_) {
      sender.AdvanceTo(bucket.window_start + window_cycles);
      bucket.window_start = sender.Now();
      bucket.sends_in_window = 1;
      total_throttled_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  uint64_t send_cost =
      send_path_ == SendPath::kPosted ? costs.ipi_send_posted : costs.ipi_send_vmexit;
  sender.Charge(CostCategory::kTlbShootdown, send_cost);

  Mailbox& box = mailboxes_[target_core];
  box.stolen_cycles.fetch_add(costs.ipi_receive + handler_cycles, std::memory_order_relaxed);
  box.received.fetch_add(1, std::memory_order_relaxed);
  total_sent_.fetch_add(1, std::memory_order_relaxed);
}

void PostedIpiFabric::Absorb(SimClock& clock, int core) {
  AQUILA_CHECK(core >= 0 && core < CoreRegistry::kMaxCores);
  uint64_t stolen = mailboxes_[core].stolen_cycles.exchange(0, std::memory_order_relaxed);
  if (stolen != 0) {
    clock.Charge(CostCategory::kTlbShootdown, stolen);
  }
}

}  // namespace aquila
