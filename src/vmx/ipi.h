// Posted-IPI fabric with hypervisor rate limiting (§4.1 of the paper).
//
// Aquila batches TLB shootdowns: the sender removes up to 512 mappings and
// sends one IPI per target core. Because Aquila runs unmodified user code in
// a privileged ring, the *send* path deliberately takes a vmexit (MSR write)
// so the hypervisor can rate-limit interrupt storms (DoS protection); the
// *receive* path is vmexit-less, as in Shinjuku.
//
// In the simulation the functional effect of the IPI (invalidating remote
// software TLB entries) is applied synchronously by the shootdown code in
// src/mem/tlb.*; the fabric models the *time*: the sender's clock is charged
// for the send, and the handler cost is posted to the target core's mailbox,
// where the target absorbs it at its next operation boundary — interrupt
// time stolen from the victim, exactly as on real hardware.
#ifndef AQUILA_SRC_VMX_IPI_H_
#define AQUILA_SRC_VMX_IPI_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "src/telemetry/metrics.h"
#include "src/util/cpu.h"
#include "src/util/sim_clock.h"
#include "src/vmx/cost_model.h"

namespace aquila {

class PostedIpiFabric {
 public:
  enum class SendPath {
    kPosted,           // raw posted interrupt, no vmexit (298 cycles)
    kVmexitProtected,  // MSR-write path through the hypervisor (2081 cycles)
  };

  explicit PostedIpiFabric(SendPath path = SendPath::kVmexitProtected);

  // Sends one shootdown-class IPI to `target_core`, charging the sender's
  // clock for the send path and the target's mailbox for the handler.
  // `handler_cycles` is the invalidation work the target performs (depends
  // on the batch size).
  void Send(SimClock& sender, int target_core, uint64_t handler_cycles);

  // Absorbs interrupt time stolen from `core` since the last call: advances
  // `clock` by the pending handler cycles. Called at operation boundaries
  // (fault entry) by the core's owner thread.
  void Absorb(SimClock& clock, int core);

  uint64_t TotalSent() const { return total_sent_.load(std::memory_order_relaxed); }
  uint64_t TotalThrottled() const { return total_throttled_.load(std::memory_order_relaxed); }

  SendPath send_path() const { return send_path_; }
  void set_send_path(SendPath path) { send_path_ = path; }

  // Hypervisor rate limit: IPIs allowed per simulated millisecond per sender
  // before the hypervisor delays the sender. 0 disables throttling.
  void set_rate_limit_per_ms(uint64_t n) { rate_limit_per_ms_ = n; }

 private:
  struct alignas(kCacheLineSize) Mailbox {
    std::atomic<uint64_t> stolen_cycles{0};
    std::atomic<uint64_t> received{0};
  };

  struct alignas(kCacheLineSize) SenderBucket {
    uint64_t window_start = 0;
    uint64_t sends_in_window = 0;
  };

  SendPath send_path_;
  uint64_t rate_limit_per_ms_ = 0;
  std::array<Mailbox, CoreRegistry::kMaxCores> mailboxes_{};
  std::array<SenderBucket, CoreRegistry::kMaxCores> buckets_{};
  std::atomic<uint64_t> total_sent_{0};
  std::atomic<uint64_t> total_throttled_{0};
  // Last member: unregisters before the counters it reads are destroyed.
  telemetry::CallbackGroup metrics_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_VMX_IPI_H_
