#include "src/vmx/hypervisor.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "src/util/bitops.h"
#include "src/util/logging.h"

namespace aquila {

Hypervisor::Hypervisor(const Options& options) : options_(options) {
  AQUILA_CHECK(IsPowerOfTwo(options_.chunk_size));
  AQUILA_CHECK(IsAligned(options_.host_memory_bytes, options_.chunk_size));
#if defined(__linux__)
  backing_fd_ = memfd_create("aquila-host-mem", 0);
#endif
  if (backing_fd_ >= 0) {
    AQUILA_CHECK(ftruncate(backing_fd_, static_cast<off_t>(options_.host_memory_bytes)) == 0);
    void* mem = mmap(nullptr, options_.host_memory_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                     backing_fd_, 0);
    AQUILA_CHECK(mem != MAP_FAILED);
    host_base_ = static_cast<uint8_t*>(mem);
  } else {
    // Fallback for hosts without memfd: anonymous memory (trap mode cannot
    // alias frames in this configuration and falls back to soft mode).
    void* mem = mmap(nullptr, options_.host_memory_bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    AQUILA_CHECK(mem != MAP_FAILED);
    host_base_ = static_cast<uint8_t*>(mem);
  }
}

Hypervisor::~Hypervisor() {
  if (host_base_ != nullptr) {
    munmap(host_base_, options_.host_memory_bytes);
  }
  if (backing_fd_ >= 0) {
    close(backing_fd_);
  }
}

uint8_t* Hypervisor::HostPtr(uint64_t hpa) {
  AQUILA_DCHECK(hpa < options_.host_memory_bytes);
  return host_base_ + hpa;
}

int Hypervisor::CreateGuest() {
  std::lock_guard<SpinLock> guard(guests_lock_);
  guests_.push_back(std::make_unique<GuestContext>());
  return static_cast<int>(guests_.size() - 1);
}

ExtendedPageTable& Hypervisor::GuestEpt(int guest) {
  std::lock_guard<SpinLock> guard(guests_lock_);
  AQUILA_CHECK(guest >= 0 && guest < static_cast<int>(guests_.size()));
  return guests_[guest]->ept;
}

StatusOr<uint64_t> Hypervisor::AllocHostChunk() {
  {
    std::lock_guard<SpinLock> guard(host_lock_);
    if (!free_chunks_.empty()) {
      uint64_t hpa = free_chunks_.back();
      free_chunks_.pop_back();
      free_chunks_bytes_.fetch_sub(options_.chunk_size, std::memory_order_relaxed);
      return hpa;
    }
  }
  uint64_t hpa = host_next_.fetch_add(options_.chunk_size, std::memory_order_relaxed);
  if (hpa + options_.chunk_size > options_.host_memory_bytes) {
    host_next_.fetch_sub(options_.chunk_size, std::memory_order_relaxed);
    return Status::OutOfSpace("host physical memory exhausted");
  }
  return hpa;
}

void Hypervisor::FreeHostChunk(uint64_t hpa) {
  std::lock_guard<SpinLock> guard(host_lock_);
  free_chunks_.push_back(hpa);
  free_chunks_bytes_.fetch_add(options_.chunk_size, std::memory_order_relaxed);
}

Status Hypervisor::InstallBacking(GuestContext& ctx, uint64_t gpa_chunk) {
  StatusOr<uint64_t> hpa = AllocHostChunk();
  if (!hpa.ok()) {
    return hpa.status();
  }
  Status status = ctx.ept.Map(gpa_chunk, *hpa, options_.chunk_size, options_.chunk_size);
  if (!status.ok()) {
    FreeHostChunk(*hpa);
    return status;
  }
  ctx.backed_bytes += options_.chunk_size;
  return Status::Ok();
}

StatusOr<uint64_t> Hypervisor::VmcallGrantGpaRange(Vcpu& vcpu, int guest, uint64_t bytes) {
  vcpu.ChargeVmcall();
  // The hypervisor is one logical context; vmcall service time is modest but
  // serialized across vCPUs.
  dispatch_.Acquire(vcpu.clock(), CostCategory::kVmExit, 400);

  bytes = AlignUp(bytes, options_.chunk_size);
  GuestContext* ctx;
  {
    std::lock_guard<SpinLock> guard(guests_lock_);
    AQUILA_CHECK(guest >= 0 && guest < static_cast<int>(guests_.size()));
    ctx = guests_[guest].get();
  }
  std::lock_guard<SpinLock> guard(ctx->lock);
  uint64_t gpa = ctx->next_gpa;
  ctx->next_gpa += bytes;
  ctx->grants[gpa] = Grant{gpa, bytes};
  ctx->granted_bytes += bytes;
  if (options_.eager_backing) {
    for (uint64_t off = 0; off < bytes; off += options_.chunk_size) {
      AQUILA_RETURN_IF_ERROR(InstallBacking(*ctx, gpa + off));
    }
  }
  return gpa;
}

Status Hypervisor::VmcallReleaseGpaRange(Vcpu& vcpu, int guest, uint64_t gpa, uint64_t bytes) {
  vcpu.ChargeVmcall();
  dispatch_.Acquire(vcpu.clock(), CostCategory::kVmExit, 400);

  bytes = AlignUp(bytes, options_.chunk_size);
  GuestContext* ctx;
  {
    std::lock_guard<SpinLock> guard(guests_lock_);
    AQUILA_CHECK(guest >= 0 && guest < static_cast<int>(guests_.size()));
    ctx = guests_[guest].get();
  }
  std::lock_guard<SpinLock> guard(ctx->lock);
  auto it = ctx->grants.find(gpa);
  if (it == ctx->grants.end() || it->second.bytes != bytes) {
    return Status::InvalidArgument("release does not match a grant");
  }
  // Return every backed chunk in the range to the host pool.
  for (uint64_t off = 0; off < bytes; off += options_.chunk_size) {
    uint64_t hpa;
    if (ctx->ept.Translate(gpa + off, &hpa)) {
      Status status = ctx->ept.Unmap(gpa + off, options_.chunk_size);
      if (!status.ok()) {
        return status;
      }
      FreeHostChunk(AlignDown(hpa, options_.chunk_size));
      ctx->backed_bytes -= options_.chunk_size;
    }
  }
  ctx->grants.erase(it);
  ctx->granted_bytes -= bytes;
  return Status::Ok();
}

void Hypervisor::VmcallForwardSyscall(Vcpu& vcpu, uint64_t host_cycles) {
  vcpu.ChargeVmcall();
  dispatch_.Acquire(vcpu.clock(), CostCategory::kSyscall, host_cycles);
}

Status Hypervisor::HandleEptFault(Vcpu& vcpu, int guest, uint64_t gpa) {
  vcpu.ChargeEptFault();
  dispatch_.Acquire(vcpu.clock(), CostCategory::kVmExit, 300);

  GuestContext* ctx;
  {
    std::lock_guard<SpinLock> guard(guests_lock_);
    AQUILA_CHECK(guest >= 0 && guest < static_cast<int>(guests_.size()));
    ctx = guests_[guest].get();
  }
  std::lock_guard<SpinLock> guard(ctx->lock);
  // Validate the access against the grants (the "check the normal page
  // table" step of Dune's EPT fault handling, §3.5).
  auto it = ctx->grants.upper_bound(gpa);
  if (it == ctx->grants.begin()) {
    return Status::InvalidArgument("EPT fault outside granted ranges");
  }
  --it;
  const Grant& grant = it->second;
  if (gpa < grant.gpa || gpa >= grant.gpa + grant.bytes) {
    return Status::InvalidArgument("EPT fault outside granted ranges");
  }
  uint64_t chunk = AlignDown(gpa, options_.chunk_size);
  uint64_t hpa;
  if (ctx->ept.Translate(chunk, &hpa)) {
    return Status::Ok();  // another vCPU already installed it
  }
  return InstallBacking(*ctx, chunk);
}

uint8_t* Hypervisor::ResolveGpa(Vcpu& vcpu, int guest, uint64_t gpa) {
  GuestContext* ctx;
  {
    std::lock_guard<SpinLock> guard(guests_lock_);
    AQUILA_CHECK(guest >= 0 && guest < static_cast<int>(guests_.size()));
    ctx = guests_[guest].get();
  }
  uint64_t hpa;
  if (!ctx->ept.Translate(gpa, &hpa)) {
    Status status = HandleEptFault(vcpu, guest, gpa);
    AQUILA_CHECK(status.ok());
    AQUILA_CHECK(ctx->ept.Translate(gpa, &hpa));
  }
  return HostPtr(hpa);
}

uint64_t Hypervisor::granted_bytes(int guest) const {
  auto* self = const_cast<Hypervisor*>(this);
  std::lock_guard<SpinLock> guard(self->guests_lock_);
  AQUILA_CHECK(guest >= 0 && guest < static_cast<int>(self->guests_.size()));
  GuestContext* ctx = self->guests_[guest].get();
  std::lock_guard<SpinLock> ctx_guard(ctx->lock);
  return ctx->granted_bytes;
}

uint64_t Hypervisor::backed_bytes(int guest) const {
  auto* self = const_cast<Hypervisor*>(this);
  std::lock_guard<SpinLock> guard(self->guests_lock_);
  AQUILA_CHECK(guest >= 0 && guest < static_cast<int>(self->guests_.size()));
  GuestContext* ctx = self->guests_[guest].get();
  std::lock_guard<SpinLock> ctx_guard(ctx->lock);
  return ctx->backed_bytes;
}

}  // namespace aquila
