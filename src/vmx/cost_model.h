// Cycle-cost model for privilege transitions and hardware events.
//
// These constants substitute for hardware we cannot touch from an
// unprivileged container (VT-x transitions, IPIs, FPU state switches). Every
// value is either measured by the paper itself or quoted by the paper from
// the systems it builds on (Dune, Shinjuku):
//
//   ring3 trap          1287 cycles  — §6.4 "protection domain switch cost
//                                      (excluding the handler itself)"
//   ring0 exception      552 cycles  — §6.4 "trap cost in non-root ring 0"
//   vmexit round trip    750 cycles  — §4.4, quoting Dune
//   posted IPI send      298 cycles  — §4.1, quoting Shinjuku
//   IPI send w/ vmexit  2081 cycles  — §4.1 (DoS-protected send path)
//   FPU save/restore     300 cycles  — §3.3 (XSAVEOPT/FXRSTOR, AVX state)
//   4 KB memcpy plain   2400 cycles  — §3.3
//   4 KB memcpy NT      ~900 cycles  — §3.3 (AVX2 streaming)
//
// The model is a plain struct so tests and ablation benches can perturb
// individual entries.
#ifndef AQUILA_SRC_VMX_COST_MODEL_H_
#define AQUILA_SRC_VMX_COST_MODEL_H_

#include <cstdint>

namespace aquila {

struct CostModel {
  // Protection-domain switches.
  uint64_t ring3_trap = 1287;       // ring3 -> ring0 fault entry + iret, excl. handler
  uint64_t ring0_exception = 552;   // exception taken and returned within ring 0
  uint64_t syscall_entry_exit = 700;  // syscall/sysret pair incl. kernel prologue

  // Virtualization transitions.
  uint64_t vmexit_roundtrip = 750;  // vmexit + vmentry hardware cost
  uint64_t vmcall_dispatch = 450;   // hypervisor-side decode/dispatch on top of the exit
  uint64_t ept_fault = 1500;        // EPT violation exit + hypervisor walk + install

  // Interrupts.
  uint64_t ipi_send_posted = 298;   // posted-interrupt send, no vmexit
  uint64_t ipi_send_vmexit = 2081;  // MSR-write send path through the hypervisor (§4.1)
  uint64_t ipi_receive = 300;       // receive + handler entry on the target core
  uint64_t tlb_invalidate_page = 120;  // per-page invalidation on a core
  uint64_t tlb_full_flush = 600;

  // Memory copies between DRAM cache and byte-addressable devices (§3.3).
  uint64_t fpu_save_restore = 300;
  uint64_t memcpy_4k_plain = 2400;
  uint64_t memcpy_4k_nt = 900;

  // Hardware page-table walk on a TLB miss (no fault).
  uint64_t hardware_walk = 50;

  // Kernel software path lengths for the Linux baseline (charged, not
  // executed): filesystem + block layer per 4 KB direct-I/O request, and the
  // generic fault path around the architectural trap.
  uint64_t kernel_io_path = 7000;
  uint64_t kernel_fault_path = 1200;

  // CPU frequency used to convert cycles <-> time in reports (2.4 GHz, the
  // paper's testbed).
  uint64_t cycles_per_us = 2400;
};

// Global default model. Benches that perturb it must restore it.
CostModel& GlobalCostModel();

}  // namespace aquila

#endif  // AQUILA_SRC_VMX_COST_MODEL_H_
