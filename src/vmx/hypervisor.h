// Simulated hypervisor: host physical memory, guest-physical grants, EPT
// fault handling, and the vmcall interface for uncommon-path operations.
//
// The paper's Aquila interacts with the hypervisor only for operations
// ④ (file-mapping management) and ⑤ (dynamic DRAM-cache resizing). The
// resizing path is modeled faithfully: the guest vmcalls to be granted a
// guest-physical range; backing host memory is installed *lazily* on EPT
// faults at huge-page granularity (the paper uses 1 GB pages for GPA->HPA;
// we scale the chunk size down with the rest of the geometry).
//
// Host physical memory is a real memfd-backed mapping so that the trap-mode
// driver (src/core/trap_driver.*) can alias cache frames into application
// virtual addresses with mmap(MAP_FIXED), mirroring how the real Aquila's
// guest page table points application VAs at cache pages.
#ifndef AQUILA_SRC_VMX_HYPERVISOR_H_
#define AQUILA_SRC_VMX_HYPERVISOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/util/sim_clock.h"
#include "src/util/spinlock.h"
#include "src/util/status.h"
#include "src/vmx/ept.h"
#include "src/vmx/vcpu.h"

namespace aquila {

class Hypervisor {
 public:
  struct Options {
    // Capacity of the host physical memory pool. Reserved lazily (memfd +
    // mmap), so a generous default costs nothing until touched.
    uint64_t host_memory_bytes = 4ull << 30;
    // Granularity of GPA->HPA backing; models the paper's 1 GB EPT pages at
    // the reproduction's scaled-down geometry.
    uint64_t chunk_size = 4ull << 20;
    // Install EPT backing eagerly at grant time instead of on EPT faults.
    bool eager_backing = false;
  };

  explicit Hypervisor(const Options& options);
  ~Hypervisor();

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  // --- Host physical memory -------------------------------------------------
  uint8_t* HostPtr(uint64_t hpa);
  int backing_fd() const { return backing_fd_; }
  uint64_t chunk_size() const { return options_.chunk_size; }

  // --- Guest lifecycle --------------------------------------------------------
  // One guest context per Aquila process instance.
  int CreateGuest();
  ExtendedPageTable& GuestEpt(int guest);

  // --- vmcall interface (uncommon path, operation ⑤) -------------------------
  // Grants `bytes` of new guest-physical address space to the guest's DRAM
  // cache; backing is installed lazily unless eager_backing. Returns the GPA
  // base of the granted range. Charges the vmcall to `vcpu`.
  StatusOr<uint64_t> VmcallGrantGpaRange(Vcpu& vcpu, int guest, uint64_t bytes);

  // Returns a previously granted range to the host (cache shrink). The guest
  // must have stopped using frames in the range.
  Status VmcallReleaseGpaRange(Vcpu& vcpu, int guest, uint64_t gpa, uint64_t bytes);

  // Forwarded host syscall (everything Aquila does not intercept, §4.4):
  // charges a vmcall plus `host_cycles` of host-kernel work.
  void VmcallForwardSyscall(Vcpu& vcpu, uint64_t host_cycles);

  // --- EPT faults (GPA access with no HPA backing) ----------------------------
  // Validates the access against the guest's grants and installs backing for
  // the containing chunk. Charges the EPT-fault cost to `vcpu`.
  Status HandleEptFault(Vcpu& vcpu, int guest, uint64_t gpa);

  // Resolves a guest-physical address to a host pointer, taking the EPT
  // fault path on first touch of each chunk. This is how the cache layer
  // obtains frame memory.
  uint8_t* ResolveGpa(Vcpu& vcpu, int guest, uint64_t gpa);

  // --- Introspection ----------------------------------------------------------
  uint64_t granted_bytes(int guest) const;
  uint64_t backed_bytes(int guest) const;
  uint64_t host_allocated_bytes() const {
    return host_next_.load(std::memory_order_relaxed) -
           free_chunks_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Grant {
    uint64_t gpa = 0;
    uint64_t bytes = 0;
  };

  struct GuestContext {
    ExtendedPageTable ept;
    std::map<uint64_t, Grant> grants;  // keyed by gpa
    uint64_t next_gpa = kGpaBase;
    uint64_t granted_bytes = 0;
    uint64_t backed_bytes = 0;
    mutable SpinLock lock;
  };

  // Guest-physical addresses start above a hole so that gpa 0 stays invalid.
  static constexpr uint64_t kGpaBase = 1ull << 32;

  StatusOr<uint64_t> AllocHostChunk();
  void FreeHostChunk(uint64_t hpa);
  Status InstallBacking(GuestContext& ctx, uint64_t gpa_chunk);

  Options options_;
  int backing_fd_ = -1;
  uint8_t* host_base_ = nullptr;
  std::atomic<uint64_t> host_next_{0};
  std::atomic<uint64_t> free_chunks_bytes_{0};
  SpinLock host_lock_;
  std::vector<uint64_t> free_chunks_;

  SpinLock guests_lock_;
  std::vector<std::unique_ptr<GuestContext>> guests_;

  // The hypervisor is a single logical execution context: concurrent vmexits
  // from many vCPUs serialize here (models the cost the paper avoids by
  // keeping these operations off the common path).
  SerializedResource dispatch_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_VMX_HYPERVISOR_H_
