#include "src/vmx/vcpu.h"

namespace aquila {

const VcpuGlobalMetrics& VcpuMetrics() {
  static VcpuGlobalMetrics metrics{
      telemetry::Registry().GetCounter("aquila.vmx.ring3_traps"),
      telemetry::Registry().GetCounter("aquila.vmx.ring0_exceptions"),
      telemetry::Registry().GetCounter("aquila.vmx.syscalls"),
      telemetry::Registry().GetCounter("aquila.vmx.vmexits"),
      telemetry::Registry().GetCounter("aquila.vmx.vmcalls"),
      telemetry::Registry().GetCounter("aquila.vmx.ept_faults"),
  };
  return metrics;
}

Vcpu& ThisVcpu() {
  static thread_local Vcpu vcpu(CoreRegistry::CurrentCore());
  return vcpu;
}

// Declared in src/util/sim_clock.h. The thread's simulated clock IS its
// vCPU's clock, so layers that never see a Vcpu (the block cache, the DB
// user-work measurements) charge the same timeline as the device and
// privilege-transition layers.
SimClock& ThisThreadClock() { return ThisVcpu().clock(); }

}  // namespace aquila
