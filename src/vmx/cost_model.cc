#include "src/vmx/cost_model.h"

namespace aquila {

CostModel& GlobalCostModel() {
  static CostModel model;
  return model;
}

}  // namespace aquila
