// Static-Sorted-Table (SST) files: the on-device format of the mini-RocksDB
// (§5: fixed-size files of sorted blocks with index and bloom filter).
//
// Layout:
//   [data block]*  entries: varint klen | varint vlen | fixed64 tag | k | v,
//                  followed by a fixed32 CRC32C of the block payload
//   [filter block] bloom over user keys
//   [index block]  per data block: length-prefixed last_key | off | size
//                  (size counts the payload, not the CRC trailer)
//   [footer]       index/filter locations + magic (fixed 40 bytes)
// Entries are in internal-key order: user key ascending, sequence number
// descending — a point Get stops at the first entry for its user key.
#ifndef AQUILA_SRC_KVS_SST_H_
#define AQUILA_SRC_KVS_SST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kvs/block_cache.h"
#include "src/kvs/bloom.h"
#include "src/kvs/env.h"
#include "src/kvs/memtable.h"

namespace aquila {

struct SstOptions {
  uint64_t block_size = 4096;
  int bloom_bits_per_key = 10;
};

class SstBuilder {
 public:
  SstBuilder(WritableFile* file, const SstOptions& options);

  // Keys must arrive in internal-key order.
  void Add(const Slice& key, uint64_t sequence, ValueType type, const Slice& value);

  // Writes filter, index, and footer. The file is synced and closed by the
  // caller.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_size() const { return offset_ + pending_block_.size(); }
  const std::string& smallest_key() const { return smallest_; }
  const std::string& largest_key() const { return largest_; }

 private:
  void FlushBlock();

  WritableFile* file_;
  SstOptions options_;
  std::string pending_block_;
  std::string pending_last_key_;
  std::string index_;
  BloomFilterBuilder bloom_;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  std::string smallest_;
  std::string largest_;
  Status status_;
};

class SstReader {
 public:
  // `cache` may be null (mmio mode: the mmio cache is the only cache, as
  // with RocksDB's mmap reads). `file_id` keys the block cache.
  static StatusOr<std::unique_ptr<SstReader>> Open(std::unique_ptr<RandomAccessFile> file,
                                                   BlockCache* cache, uint64_t file_id);

  // Point lookup: *found=false if absent; *deleted=true for a tombstone.
  Status Get(const Slice& key, std::string* value, bool* found, bool* deleted);

  const std::string& smallest_key() const { return smallest_; }
  const std::string& largest_key() const { return largest_; }
  uint64_t num_blocks() const { return index_.size(); }

  // Forward iteration over all entries (compaction, scans).
  class Iterator {
   public:
    explicit Iterator(SstReader* reader);
    bool Valid() const { return valid_; }
    Status status() const { return status_; }
    void SeekToFirst();
    void Seek(const Slice& key);  // first entry with user key >= key
    void Next();
    Slice key() const { return key_; }
    uint64_t sequence() const { return tag_ >> 8; }
    ValueType type() const { return static_cast<ValueType>(tag_ & 0xff); }
    Slice value() const { return value_; }

   private:
    bool LoadBlock(size_t block_index);
    bool ParseCurrent();

    SstReader* reader_;
    size_t block_index_ = 0;
    std::shared_ptr<const std::string> block_;
    const char* pos_ = nullptr;
    bool valid_ = false;
    Status status_;
    Slice key_;
    uint64_t tag_ = 0;
    Slice value_;
  };

 private:
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint64_t size;
  };

  SstReader() = default;

  StatusOr<std::shared_ptr<const std::string>> ReadBlock(size_t block_index);

  std::unique_ptr<RandomAccessFile> file_;
  BlockCache* cache_ = nullptr;
  uint64_t file_id_ = 0;
  std::vector<IndexEntry> index_;
  std::string filter_data_;
  std::string smallest_;
  std::string largest_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_KVS_SST_H_
