// Mini-RocksDB: a leveled LSM-tree key-value store (§5).
//
// Architecture mirrors the parts of RocksDB the paper's experiments
// exercise: a skiplist memtable with WAL, flushes into 64 MB-style SSTs in
// L0, leveled compaction into sorted runs, bloom filters and a pinned index
// per table, and a pluggable read path — direct I/O + user-space block cache
// (the recommended RocksDB configuration) or mmio through an engine
// (RocksDB's mmap_reads mode / the Aquila port). Compactions run inline on
// the writer thread: the paper excludes write/compaction performance from
// its claims (background, device-bound, §6.1), and inline compaction keeps
// the store deterministic.
#ifndef AQUILA_SRC_KVS_LSM_DB_H_
#define AQUILA_SRC_KVS_LSM_DB_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/kvs/env.h"
#include "src/kvs/kv_store.h"
#include "src/kvs/memtable.h"
#include "src/kvs/sst.h"
#include "src/telemetry/metrics.h"
#include "src/util/spinlock.h"

namespace aquila {

class LsmDb : public KvStore {
 public:
  struct Options {
    KvsEnv* env = nullptr;
    BlockCache* block_cache = nullptr;  // used only on the direct-I/O path
    std::string name = "/db";
    uint64_t memtable_bytes = 4ull << 20;
    uint64_t sst_target_bytes = 8ull << 20;  // scaled from RocksDB's 64 MB
    int l0_compaction_trigger = 4;
    // Level n (n>=1) holds at most base * multiplier^(n-1) bytes.
    uint64_t l1_max_bytes = 32ull << 20;
    int level_size_multiplier = 8;
    int max_levels = 7;
    bool enable_wal = true;
    SstOptions sst;
  };

  struct Stats {
    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> puts{0};
    std::atomic<uint64_t> memtable_hits{0};
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> compactions{0};
    std::atomic<uint64_t> bytes_compacted{0};
  };

  static StatusOr<std::unique_ptr<LsmDb>> Open(const Options& options);
  ~LsmDb() override;

  Status Put(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Status Get(const Slice& key, std::string* value, bool* found) override;
  Status Scan(const Slice& start, int count,
              const std::function<void(const Slice&, const Slice&)>& visit) override;

  // Forces the memtable out to L0.
  Status Flush();

  // Durability barrier: flushes WAL buffers to the device and fsyncs. Puts
  // issued before a successful SyncWal survive a crash (given the backing
  // store's own metadata is synced); later puts may be lost.
  Status SyncWal();

  const Stats& stats() const { return stats_; }
  int NumLevelFiles(int level) const;
  uint64_t TotalSstBytes() const;

 private:
  struct TableMeta {
    uint64_t file_number = 0;
    uint64_t file_size = 0;
    std::string smallest;
    std::string largest;
    std::shared_ptr<SstReader> reader;
  };

  explicit LsmDb(const Options& options);

  Status WriteInternal(ValueType type, const Slice& key, const Slice& value);
  Status FlushMemTableLocked();
  Status WriteManifest();
  Status MaybeCompactLocked();
  Status CompactLevelLocked(int level);
  Status WriteTables(std::vector<std::unique_ptr<SstReader::Iterator>> inputs, int target_level,
                     std::vector<TableMeta>* outputs);
  StatusOr<TableMeta> OpenTable(uint64_t file_number, uint64_t file_size);
  std::string SstPath(uint64_t file_number) const;
  uint64_t LevelMaxBytes(int level) const;

  Options options_;
  Stats stats_;

  std::mutex write_mu_;  // serializes writers (RocksDB's write path does too)
  // Readers grab a reference under version_lock_; a flush publishes a fresh
  // memtable the same way RocksDB retires an immutable one — the old table
  // stays alive for readers still holding it.
  std::shared_ptr<MemTable> memtable_;
  std::unique_ptr<WritableFile> wal_;
  std::atomic<uint64_t> sequence_{1};
  std::atomic<uint64_t> next_file_number_{1};

  // Version state: L0 newest-first; L1+ sorted, non-overlapping.
  mutable RwSpinLock version_lock_;
  std::vector<std::vector<TableMeta>> levels_;

  // Last member: callbacks read stats_, so they unregister first.
  telemetry::CallbackGroup metrics_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_KVS_LSM_DB_H_
