// Sharded LRU block cache: the user-space I/O cache of the explicit-I/O
// baseline (Figure 1(b), §6.3).
//
// This is the structure whose management the paper measures at ~32 K cycles
// per RocksDB read (lookups + evictions): every access — hits included —
// pays a hash probe, a shard lock, and an LRU list splice. The fixed
// surcharge below models the gap between this compact implementation and
// RocksDB's production cache (handle tables, ref-counting, charge tracking);
// the structural costs (locking, hashing, LRU maintenance, block copies)
// execute for real.
#ifndef AQUILA_SRC_KVS_BLOCK_CACHE_H_
#define AQUILA_SRC_KVS_BLOCK_CACHE_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/telemetry/metrics.h"
#include "src/util/sim_clock.h"
#include "src/util/spinlock.h"

namespace aquila {

class BlockCache {
 public:
  struct Options {
    uint64_t capacity_bytes = 64ull << 20;
    int shards = 16;
    // Modeled per-operation surcharges (cycles), calibrated so the
    // user-space cache path lands in the regime the paper measures (§6.3).
    uint64_t lookup_surcharge = 900;
    uint64_t insert_surcharge = 1600;
  };

  struct Stats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> evictions{0};
  };

  explicit BlockCache(const Options& options);

  // Returns the cached block or nullptr. Charges the calling thread's clock
  // for the lookup (hits are NOT free in a user-space cache — the point of
  // the paper).
  std::shared_ptr<const std::string> Lookup(uint64_t file_id, uint64_t offset);

  // Inserts (or replaces) a block, evicting LRU entries to fit.
  void Insert(uint64_t file_id, uint64_t offset, std::shared_ptr<const std::string> block);

  void Erase(uint64_t file_id, uint64_t offset);

  uint64_t UsedBytes() const;
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t key;
    std::shared_ptr<const std::string> block;
    std::list<uint64_t>::iterator lru_pos;
  };

  struct alignas(kCacheLineSize) Shard {
    SpinLock lock;
    std::unordered_map<uint64_t, Entry> table;
    std::list<uint64_t> lru;  // front = oldest
    uint64_t used_bytes = 0;
  };

  static uint64_t MakeKey(uint64_t file_id, uint64_t offset) {
    return (file_id << 40) ^ offset;
  }
  Shard& ShardFor(uint64_t key);

  Options options_;
  uint64_t per_shard_capacity_;
  std::vector<Shard> shards_;
  Stats stats_;
  // Last member: callbacks read stats_, so they unregister first.
  telemetry::CallbackGroup metrics_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_KVS_BLOCK_CACHE_H_
