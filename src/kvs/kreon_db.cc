#include "src/kvs/kreon_db.h"

#include <cstring>
#include <vector>

#include "src/util/bitops.h"
#include "src/util/crc32c.h"
#include "src/util/logging.h"

namespace aquila {

namespace {

constexpr uint64_t kKreonMagic = 0x4b52454f4e414c31ull;  // "KREONAL1"
constexpr uint64_t kNodeBytes = kPageSize;

struct Super {
  uint64_t magic;
  uint64_t root_page;
  uint64_t next_index_page;
  uint64_t log_head;
  uint64_t entries;
  uint32_t crc;  // CRC32C of this struct with crc zeroed
  uint32_t reserved;
};

uint32_t SuperCrc(const Super& super) {
  Super copy = super;
  copy.crc = 0;
  return Crc32c(&copy, sizeof(copy));
}

struct Slot {
  uint8_t klen;
  char key[KreonDb::kMaxKeyBytes];
  uint8_t tomb;
  uint8_t pad[6];
  uint64_t value;  // leaf: log offset; internal: child page
};
static_assert(sizeof(Slot) == 64);

struct Node {
  uint32_t is_leaf;
  uint32_t count;
  uint64_t next_leaf;
  Slot slots[63];
};
static_assert(sizeof(Node) <= kNodeBytes);

constexpr uint32_t kMaxSlots = 63;

Slice SlotKey(const Slot& slot) { return Slice(slot.key, slot.klen); }

void FillSlot(Slot* slot, const Slice& key, uint64_t value, bool tomb) {
  AQUILA_CHECK(key.size() <= KreonDb::kMaxKeyBytes);
  std::memset(slot, 0, sizeof(Slot));
  slot->klen = static_cast<uint8_t>(key.size());
  std::memcpy(slot->key, key.data(), key.size());
  slot->tomb = tomb ? 1 : 0;
  slot->value = value;
}

// Index of the first slot with key >= target; node->count if none.
uint32_t LowerBound(const Node& node, const Slice& key) {
  uint32_t lo = 0, hi = node.count;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (SlotKey(node.slots[mid]).compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child covering `key` in an internal node: last slot with key <= target.
uint32_t ChildIndex(const Node& node, const Slice& key) {
  uint32_t i = LowerBound(node, key);
  if (i < node.count && SlotKey(node.slots[i]) == key) {
    return i;
  }
  return i == 0 ? 0 : i - 1;
}

}  // namespace

struct KreonDb::NodeRef {
  uint64_t page;
  Node node;
};

KreonDb::KreonDb(MemoryMap* map, const Options& options) : map_(map), options_(options) {
  index_pages_ = map_->length() / kNodeBytes * options_.index_percent / 100;
  if (index_pages_ < 8) {
    index_pages_ = 8;
  }
  log_base_ = index_pages_ * kNodeBytes;
}

KreonDb::~KreonDb() {
  if (opened_) {
    (void)Persist();
  }
}

StatusOr<std::unique_ptr<KreonDb>> KreonDb::Open(MemoryMap* map, const Options& options) {
  if (map->length() < 64 * kNodeBytes) {
    return Status::InvalidArgument("mapping too small for Kreon");
  }
  auto db = std::unique_ptr<KreonDb>(new KreonDb(map, options));
  Super super{};
  AQUILA_RETURN_IF_ERROR(map->Read(0, std::span(reinterpret_cast<uint8_t*>(&super),
                                                sizeof(super))));
  if (super.magic == kKreonMagic) {
    AQUILA_RETURN_IF_ERROR(db->Recover());
  } else {
    AQUILA_RETURN_IF_ERROR(db->Format());
  }
  db->opened_ = true;
  return db;
}

Status KreonDb::Format() {
  root_page_ = 1;
  next_index_page_ = 2;
  log_head_ = 0;
  entries_ = 0;
  Node root{};
  root.is_leaf = 1;
  AQUILA_RETURN_IF_ERROR(map_->Write(
      root_page_ * kNodeBytes, std::span(reinterpret_cast<const uint8_t*>(&root), sizeof(root))));
  return WriteSuper();
}

Status KreonDb::Recover() {
  Super super{};
  AQUILA_RETURN_IF_ERROR(
      map_->Read(0, std::span(reinterpret_cast<uint8_t*>(&super), sizeof(super))));
  if (SuperCrc(super) != super.crc) {
    return Status::IoError("corrupt Kreon superblock");
  }
  root_page_ = super.root_page;
  next_index_page_ = super.next_index_page;
  log_head_ = super.log_head;
  entries_ = super.entries;
  if (root_page_ == 0 || next_index_page_ > index_pages_) {
    return Status::IoError("corrupt Kreon superblock");
  }
  return Status::Ok();
}

Status KreonDb::WriteSuper() {
  Super super{kKreonMagic, root_page_, next_index_page_, log_head_, entries_, 0, 0};
  super.crc = SuperCrc(super);
  return map_->Write(0, std::span(reinterpret_cast<const uint8_t*>(&super), sizeof(super)));
}

StatusOr<uint64_t> KreonDb::AllocNode(bool leaf) {
  if (next_index_page_ >= index_pages_) {
    return Status::OutOfSpace("Kreon index area full");
  }
  uint64_t page = next_index_page_++;
  Node node{};
  node.is_leaf = leaf ? 1 : 0;
  AQUILA_RETURN_IF_ERROR(map_->Write(
      page * kNodeBytes, std::span(reinterpret_cast<const uint8_t*>(&node), sizeof(node))));
  return page;
}

StatusOr<uint64_t> KreonDb::AppendLog(const Slice& key, const Slice& value, bool tombstone) {
  uint64_t record_bytes = 9 + key.size() + value.size();
  if (log_base_ + log_head_ + record_bytes > map_->length()) {
    return Status::OutOfSpace("Kreon log full");
  }
  uint64_t offset = log_head_;
  std::string record;
  record.reserve(record_bytes);
  uint32_t klen = static_cast<uint32_t>(key.size());
  uint32_t vlen = static_cast<uint32_t>(value.size());
  record.append(reinterpret_cast<const char*>(&klen), 4);
  record.append(reinterpret_cast<const char*>(&vlen), 4);
  record.push_back(tombstone ? 1 : 0);
  record.append(key.data(), key.size());
  record.append(value.data(), value.size());
  AQUILA_RETURN_IF_ERROR(map_->Write(
      log_base_ + offset,
      std::span(reinterpret_cast<const uint8_t*>(record.data()), record.size())));
  log_head_ += record_bytes;
  return offset;
}

Status KreonDb::FindLeaf(const Slice& key, uint64_t* leaf_page, std::vector<uint64_t>* path) {
  uint64_t page = root_page_;
  while (true) {
    Node node;
    AQUILA_RETURN_IF_ERROR(map_->Read(
        page * kNodeBytes, std::span(reinterpret_cast<uint8_t*>(&node), sizeof(node))));
    if (node.is_leaf) {
      *leaf_page = page;
      return Status::Ok();
    }
    if (path != nullptr) {
      path->push_back(page);
    }
    AQUILA_CHECK(node.count > 0);
    page = node.slots[ChildIndex(node, key)].value;
  }
}

Status KreonDb::InsertIntoLeaf(uint64_t leaf_page, const std::vector<uint64_t>& path,
                               const Slice& key, uint64_t log_offset) {
  Node leaf;
  AQUILA_RETURN_IF_ERROR(map_->Read(
      leaf_page * kNodeBytes, std::span(reinterpret_cast<uint8_t*>(&leaf), sizeof(leaf))));

  uint32_t pos = LowerBound(leaf, key);
  bool replace = pos < leaf.count && SlotKey(leaf.slots[pos]) == key;
  if (!replace && leaf.count == kMaxSlots) {
    // Split the leaf, then retry the insert into the proper half.
    StatusOr<uint64_t> fresh = AllocNode(/*leaf=*/true);
    if (!fresh.ok()) {
      return fresh.status();
    }
    Node right{};
    right.is_leaf = 1;
    uint32_t half = leaf.count / 2;
    right.count = leaf.count - half;
    std::memcpy(right.slots, leaf.slots + half, right.count * sizeof(Slot));
    right.next_leaf = leaf.next_leaf;
    leaf.count = half;
    leaf.next_leaf = *fresh;
    AQUILA_RETURN_IF_ERROR(map_->Write(
        *fresh * kNodeBytes, std::span(reinterpret_cast<const uint8_t*>(&right),
                                       sizeof(right))));
    AQUILA_RETURN_IF_ERROR(map_->Write(
        leaf_page * kNodeBytes, std::span(reinterpret_cast<const uint8_t*>(&leaf),
                                          sizeof(leaf))));

    // Push the separator (first key of the right node) up the path.
    std::string separator = SlotKey(right.slots[0]).ToString();
    uint64_t child = *fresh;
    std::vector<uint64_t> parents = path;
    while (true) {
      if (parents.empty()) {
        // Split the root: new internal root with both children.
        StatusOr<uint64_t> new_root = AllocNode(/*leaf=*/false);
        if (!new_root.ok()) {
          return new_root.status();
        }
        Node root{};
        root.is_leaf = 0;
        root.count = 2;
        Node old_first;
        // Sentinel: the old subtree keeps an empty separator key.
        FillSlot(&root.slots[0], Slice("", 0), root_page_, false);
        FillSlot(&root.slots[1], Slice(separator), child, false);
        (void)old_first;
        AQUILA_RETURN_IF_ERROR(
            map_->Write(*new_root * kNodeBytes,
                        std::span(reinterpret_cast<const uint8_t*>(&root), sizeof(root))));
        root_page_ = *new_root;
        break;
      }
      uint64_t parent_page = parents.back();
      parents.pop_back();
      Node parent;
      AQUILA_RETURN_IF_ERROR(
          map_->Read(parent_page * kNodeBytes,
                     std::span(reinterpret_cast<uint8_t*>(&parent), sizeof(parent))));
      if (parent.count < kMaxSlots) {
        uint32_t at = LowerBound(parent, Slice(separator));
        std::memmove(parent.slots + at + 1, parent.slots + at,
                     (parent.count - at) * sizeof(Slot));
        FillSlot(&parent.slots[at], Slice(separator), child, false);
        parent.count++;
        AQUILA_RETURN_IF_ERROR(
            map_->Write(parent_page * kNodeBytes,
                        std::span(reinterpret_cast<const uint8_t*>(&parent), sizeof(parent))));
        break;
      }
      // Split the internal node and keep propagating.
      StatusOr<uint64_t> fresh_internal = AllocNode(/*leaf=*/false);
      if (!fresh_internal.ok()) {
        return fresh_internal.status();
      }
      Node upper{};
      upper.is_leaf = 0;
      uint32_t cut = parent.count / 2;
      upper.count = parent.count - cut;
      std::memcpy(upper.slots, parent.slots + cut, upper.count * sizeof(Slot));
      parent.count = cut;
      // Place the pending separator into the correct half.
      Node* dest = Slice(separator).compare(SlotKey(upper.slots[0])) < 0 ? &parent : &upper;
      uint32_t at = LowerBound(*dest, Slice(separator));
      std::memmove(dest->slots + at + 1, dest->slots + at, (dest->count - at) * sizeof(Slot));
      FillSlot(&dest->slots[at], Slice(separator), child, false);
      dest->count++;
      AQUILA_RETURN_IF_ERROR(
          map_->Write(parent_page * kNodeBytes,
                      std::span(reinterpret_cast<const uint8_t*>(&parent), sizeof(parent))));
      AQUILA_RETURN_IF_ERROR(
          map_->Write(*fresh_internal * kNodeBytes,
                      std::span(reinterpret_cast<const uint8_t*>(&upper), sizeof(upper))));
      separator = SlotKey(upper.slots[0]).ToString();
      child = *fresh_internal;
    }
    // Retry from the (possibly new) root.
    std::vector<uint64_t> new_path;
    uint64_t new_leaf;
    AQUILA_RETURN_IF_ERROR(FindLeaf(key, &new_leaf, &new_path));
    return InsertIntoLeaf(new_leaf, new_path, key, log_offset);
  }

  if (replace) {
    leaf.slots[pos].value = log_offset;
    leaf.slots[pos].tomb = 0;
  } else {
    std::memmove(leaf.slots + pos + 1, leaf.slots + pos, (leaf.count - pos) * sizeof(Slot));
    FillSlot(&leaf.slots[pos], key, log_offset, false);
    leaf.count++;
    entries_++;
  }
  return map_->Write(leaf_page * kNodeBytes,
                     std::span(reinterpret_cast<const uint8_t*>(&leaf), sizeof(leaf)));
}

Status KreonDb::Put(const Slice& key, const Slice& value) {
  if (key.size() > kMaxKeyBytes || key.empty()) {
    return Status::InvalidArgument("Kreon keys must be 1..48 bytes");
  }
  ExclusiveLockGuard guard(tree_lock_);
  StatusOr<uint64_t> log_offset = AppendLog(key, value, /*tombstone=*/false);
  if (!log_offset.ok()) {
    return log_offset.status();
  }
  std::vector<uint64_t> path;
  uint64_t leaf;
  AQUILA_RETURN_IF_ERROR(FindLeaf(key, &leaf, &path));
  AQUILA_RETURN_IF_ERROR(InsertIntoLeaf(leaf, path, key, *log_offset));
  if (options_.sync_interval != 0 && ++puts_since_sync_ >= options_.sync_interval) {
    puts_since_sync_ = 0;
    AQUILA_RETURN_IF_ERROR(WriteSuper());
    return map_->Sync(0, map_->length());
  }
  return Status::Ok();
}

Status KreonDb::Delete(const Slice& key) {
  ExclusiveLockGuard guard(tree_lock_);
  uint64_t leaf_page;
  AQUILA_RETURN_IF_ERROR(FindLeaf(key, &leaf_page, nullptr));
  Node leaf;
  AQUILA_RETURN_IF_ERROR(map_->Read(
      leaf_page * kNodeBytes, std::span(reinterpret_cast<uint8_t*>(&leaf), sizeof(leaf))));
  uint32_t pos = LowerBound(leaf, key);
  if (pos >= leaf.count || SlotKey(leaf.slots[pos]) != key) {
    return Status::Ok();
  }
  leaf.slots[pos].tomb = 1;
  return map_->Write(leaf_page * kNodeBytes,
                     std::span(reinterpret_cast<const uint8_t*>(&leaf), sizeof(leaf)));
}

Status KreonDb::Get(const Slice& key, std::string* value, bool* found) {
  *found = false;
  SharedLockGuard guard(tree_lock_);
  uint64_t leaf_page;
  AQUILA_RETURN_IF_ERROR(FindLeaf(key, &leaf_page, nullptr));
  Node leaf;
  AQUILA_RETURN_IF_ERROR(map_->Read(
      leaf_page * kNodeBytes, std::span(reinterpret_cast<uint8_t*>(&leaf), sizeof(leaf))));
  uint32_t pos = LowerBound(leaf, key);
  if (pos >= leaf.count || SlotKey(leaf.slots[pos]) != key || leaf.slots[pos].tomb) {
    return Status::Ok();
  }
  // Fetch the record from the value log.
  uint64_t off = log_base_ + leaf.slots[pos].value;
  uint8_t header[9];
  AQUILA_RETURN_IF_ERROR(map_->Read(off, std::span(header, sizeof(header))));
  uint32_t klen, vlen;
  std::memcpy(&klen, header, 4);
  std::memcpy(&vlen, header + 4, 4);
  value->resize(vlen);
  AQUILA_RETURN_IF_ERROR(map_->Read(
      off + 9 + klen, std::span(reinterpret_cast<uint8_t*>(value->data()), vlen)));
  *found = true;
  return Status::Ok();
}

Status KreonDb::Scan(const Slice& start, int count,
                     const std::function<void(const Slice&, const Slice&)>& visit) {
  SharedLockGuard guard(tree_lock_);
  uint64_t leaf_page;
  AQUILA_RETURN_IF_ERROR(FindLeaf(start, &leaf_page, nullptr));
  int emitted = 0;
  std::string value;
  while (leaf_page != 0 && emitted < count) {
    Node leaf;
    AQUILA_RETURN_IF_ERROR(map_->Read(
        leaf_page * kNodeBytes, std::span(reinterpret_cast<uint8_t*>(&leaf), sizeof(leaf))));
    for (uint32_t i = LowerBound(leaf, start); i < leaf.count && emitted < count; i++) {
      if (leaf.slots[i].tomb) {
        continue;
      }
      uint64_t off = log_base_ + leaf.slots[i].value;
      uint8_t header[9];
      AQUILA_RETURN_IF_ERROR(map_->Read(off, std::span(header, sizeof(header))));
      uint32_t klen, vlen;
      std::memcpy(&klen, header, 4);
      std::memcpy(&vlen, header + 4, 4);
      value.resize(vlen);
      AQUILA_RETURN_IF_ERROR(map_->Read(
          off + 9 + klen, std::span(reinterpret_cast<uint8_t*>(value.data()), vlen)));
      visit(SlotKey(leaf.slots[i]), Slice(value));
      emitted++;
    }
    leaf_page = leaf.next_leaf;
  }
  return Status::Ok();
}

Status KreonDb::Persist() {
  ExclusiveLockGuard guard(tree_lock_);
  // Data first, superblock last (the simplified CoW commit ordering).
  AQUILA_RETURN_IF_ERROR(map_->Sync(0, map_->length()));
  AQUILA_RETURN_IF_ERROR(WriteSuper());
  return map_->Sync(0, kNodeBytes);
}

}  // namespace aquila
