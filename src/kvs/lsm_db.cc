#include "src/kvs/lsm_db.h"

#include <algorithm>

#include "src/kvs/coding.h"
#include "src/telemetry/scoped_timer.h"
#include "src/util/crc32c.h"
#include "src/util/logging.h"
#include "src/vmx/vcpu.h"

namespace aquila {

namespace {

// WAL record: fixed32 crc | fixed32 klen | fixed32 vlen | u8 type | key |
// value, where crc is CRC32C over everything after the crc field. Recovery
// truncates the log at the first record whose checksum fails, so a torn or
// bit-flipped tail cannot resurrect garbage (only unacknowledged records
// past the tear are lost).
void EncodeWalRecord(std::string* out, ValueType type, const Slice& key, const Slice& value) {
  size_t crc_pos = out->size();
  PutFixed32(out, 0);  // patched below
  PutFixed32(out, static_cast<uint32_t>(key.size()));
  PutFixed32(out, static_cast<uint32_t>(value.size()));
  out->push_back(static_cast<char>(type));
  out->append(key.data(), key.size());
  out->append(value.data(), value.size());
  uint32_t crc = Crc32c(out->data() + crc_pos + 4, out->size() - crc_pos - 4);
  EncodeFixed32(out->data() + crc_pos, crc);
}

}  // namespace

LsmDb::LsmDb(const Options& options) : options_(options) {
  levels_.resize(options_.max_levels);
  memtable_ = std::make_shared<MemTable>();

  metrics_.AddCounter("aquila.kvs.gets", stats_.gets);
  metrics_.AddCounter("aquila.kvs.puts", stats_.puts);
  metrics_.AddCounter("aquila.kvs.memtable_hits", stats_.memtable_hits);
  metrics_.AddCounter("aquila.kvs.flushes", stats_.flushes);
  metrics_.AddCounter("aquila.kvs.compactions", stats_.compactions);
  metrics_.AddCounter("aquila.kvs.bytes_compacted", stats_.bytes_compacted);
}

LsmDb::~LsmDb() {
  // Flush buffered state so a reopened DB sees all acknowledged writes.
  std::lock_guard<std::mutex> guard(write_mu_);
  if (memtable_->entries() > 0) {
    (void)FlushMemTableLocked();
  }
}

std::string LsmDb::SstPath(uint64_t file_number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%06llu.sst", static_cast<unsigned long long>(file_number));
  return options_.name + buf;
}

uint64_t LsmDb::LevelMaxBytes(int level) const {
  uint64_t max = options_.l1_max_bytes;
  for (int i = 1; i < level; i++) {
    max *= options_.level_size_multiplier;
  }
  return max;
}

StatusOr<std::unique_ptr<LsmDb>> LsmDb::Open(const Options& options) {
  AQUILA_CHECK(options.env != nullptr);
  auto db = std::unique_ptr<LsmDb>(new LsmDb(options));

  // Recover the table set from the manifest, if present.
  std::string manifest_path = options.name + "/MANIFEST";
  if (options.env->FileExists(manifest_path)) {
    StatusOr<std::unique_ptr<RandomAccessFile>> file =
        options.env->NewRandomAccessFile(manifest_path);
    if (!file.ok()) {
      return file.status();
    }
    uint64_t size = (*file)->Size();
    std::string data(size, '\0');
    Slice result;
    AQUILA_RETURN_IF_ERROR((*file)->Read(0, size, data.data(), &result));
    const char* p = result.data();
    const char* limit = p + result.size();
    if (static_cast<size_t>(limit - p) < 20) {
      return Status::IoError("corrupt manifest");
    }
    db->next_file_number_.store(DecodeFixed64(p));
    db->sequence_.store(DecodeFixed64(p + 8));
    uint32_t num_levels = DecodeFixed32(p + 16);
    p += 20;
    for (uint32_t level = 0; level < num_levels && level < db->levels_.size(); level++) {
      if (static_cast<size_t>(limit - p) < 4) {
        return Status::IoError("corrupt manifest");
      }
      uint32_t count = DecodeFixed32(p);
      p += 4;
      for (uint32_t i = 0; i < count; i++) {
        if (static_cast<size_t>(limit - p) < 16) {
          return Status::IoError("corrupt manifest");
        }
        uint64_t file_number = DecodeFixed64(p);
        uint64_t file_size = DecodeFixed64(p + 8);
        p += 16;
        StatusOr<TableMeta> meta = db->OpenTable(file_number, file_size);
        if (!meta.ok()) {
          return meta.status();
        }
        db->levels_[level].push_back(std::move(*meta));
      }
    }
  }

  // Replay the WAL into the memtable.
  std::string wal_path = options.name + "/WAL";
  if (options.enable_wal && options.env->FileExists(wal_path)) {
    StatusOr<std::unique_ptr<RandomAccessFile>> wal =
        options.env->NewRandomAccessFile(wal_path);
    if (wal.ok()) {
      uint64_t size = (*wal)->Size();
      std::string data(size, '\0');
      Slice result;
      AQUILA_RETURN_IF_ERROR((*wal)->Read(0, size, data.data(), &result));
      const char* p = result.data();
      const char* limit = p + result.size();
      while (static_cast<size_t>(limit - p) >= 13) {
        uint32_t crc = DecodeFixed32(p);
        uint32_t klen = DecodeFixed32(p + 4);
        uint32_t vlen = DecodeFixed32(p + 8);
        if (static_cast<size_t>(limit - p) - 13 < static_cast<uint64_t>(klen) + vlen) {
          break;  // torn tail record
        }
        if (Crc32c(p + 4, 9 + static_cast<uint64_t>(klen) + vlen) != crc) {
          break;  // corrupt record: truncate the log here
        }
        ValueType type = static_cast<ValueType>(p[12]);
        p += 13;
        uint64_t seq = db->sequence_.fetch_add(1);
        db->memtable_->Add(seq, type, Slice(p, klen), Slice(p + klen, vlen));
        p += klen + vlen;
      }
    }
  }

  if (options.enable_wal) {
    StatusOr<std::unique_ptr<WritableFile>> wal = options.env->NewWritableFile(wal_path);
    if (!wal.ok()) {
      return wal.status();
    }
    db->wal_ = std::move(*wal);
    // Rewrite replayed records so the fresh WAL still covers the memtable.
    MemTable::Iterator it(db->memtable_.get());
    std::string batch;
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      EncodeWalRecord(&batch, it.type(), it.key(), it.value());
    }
    if (!batch.empty()) {
      AQUILA_RETURN_IF_ERROR(db->wal_->Append(batch));
    }
  }
  return db;
}

StatusOr<LsmDb::TableMeta> LsmDb::OpenTable(uint64_t file_number, uint64_t file_size) {
  StatusOr<std::unique_ptr<RandomAccessFile>> file =
      options_.env->NewRandomAccessFile(SstPath(file_number));
  if (!file.ok()) {
    return file.status();
  }
  BlockCache* cache =
      options_.env->options().read_path == ReadPath::kDirectIo ? options_.block_cache : nullptr;
  StatusOr<std::unique_ptr<SstReader>> reader =
      SstReader::Open(std::move(*file), cache, file_number);
  if (!reader.ok()) {
    return reader.status();
  }
  TableMeta meta;
  meta.file_number = file_number;
  meta.file_size = file_size;
  meta.smallest = (*reader)->smallest_key();
  meta.largest = (*reader)->largest_key();
  meta.reader = std::move(*reader);
  return meta;
}

Status LsmDb::Put(const Slice& key, const Slice& value) {
  return WriteInternal(ValueType::kValue, key, value);
}

Status LsmDb::Delete(const Slice& key) {
  return WriteInternal(ValueType::kDeletion, key, Slice());
}

Status LsmDb::SyncWal() {
  std::lock_guard<std::mutex> guard(write_mu_);
  if (wal_ == nullptr) {
    return Status::Ok();
  }
  return wal_->Sync();
}

Status LsmDb::WriteInternal(ValueType type, const Slice& key, const Slice& value) {
  std::lock_guard<std::mutex> guard(write_mu_);
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  if (wal_ != nullptr) {
    std::string record;
    EncodeWalRecord(&record, type, key, value);
    AQUILA_RETURN_IF_ERROR(wal_->Append(record));
  }
  uint64_t seq = sequence_.fetch_add(1, std::memory_order_relaxed);
  {
    ScopedMeasure measure(ThisThreadClock(), CostCategory::kUserWork);
    memtable_->Add(seq, type, key, value);
  }
  if (memtable_->ApproximateMemoryUsage() >= options_.memtable_bytes) {
    AQUILA_RETURN_IF_ERROR(FlushMemTableLocked());
    AQUILA_RETURN_IF_ERROR(MaybeCompactLocked());
  }
  return Status::Ok();
}

Status LsmDb::FlushMemTableLocked() {
  if (memtable_->entries() == 0) {
    return Status::Ok();
  }
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  AQUILA_TELEMETRY_ONLY(telemetry::TraceSpan span(telemetry::TraceEventType::kMemtableFlush,
                                                  ThisVcpu().clock()));
  uint64_t file_number = next_file_number_.fetch_add(1, std::memory_order_relaxed);
  StatusOr<std::unique_ptr<WritableFile>> file =
      options_.env->NewWritableFile(SstPath(file_number));
  if (!file.ok()) {
    return file.status();
  }
  SstBuilder builder(file->get(), options_.sst);
  MemTable::Iterator it(memtable_.get());
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    builder.Add(it.key(), it.sequence(), it.type(), it.value());
  }
  AQUILA_RETURN_IF_ERROR(builder.Finish());
  uint64_t file_size = builder.file_size();
  AQUILA_RETURN_IF_ERROR((*file)->Sync());
  AQUILA_RETURN_IF_ERROR((*file)->Close());

  StatusOr<TableMeta> meta = OpenTable(file_number, file_size);
  if (!meta.ok()) {
    return meta.status();
  }
  {
    // Publish the new table and retire the memtable atomically: a reader
    // sees either the old memtable (which still holds the data) or the new
    // L0 table — never neither.
    ExclusiveLockGuard guard(version_lock_);
    levels_[0].insert(levels_[0].begin(), std::move(*meta));  // newest first
    memtable_ = std::make_shared<MemTable>();
  }
  if (wal_ != nullptr) {
    AQUILA_RETURN_IF_ERROR(wal_->Close());
    (void)options_.env->DeleteFile(options_.name + "/WAL");
    StatusOr<std::unique_ptr<WritableFile>> wal =
        options_.env->NewWritableFile(options_.name + "/WAL");
    if (!wal.ok()) {
      return wal.status();
    }
    wal_ = std::move(*wal);
  }

  return WriteManifest();
}

Status LsmDb::WriteManifest() {
  std::string manifest;
  PutFixed64(&manifest, next_file_number_.load());
  PutFixed64(&manifest, sequence_.load());
  PutFixed32(&manifest, static_cast<uint32_t>(levels_.size()));
  {
    SharedLockGuard guard(version_lock_);
    for (const auto& level : levels_) {
      PutFixed32(&manifest, static_cast<uint32_t>(level.size()));
      for (const TableMeta& table : level) {
        PutFixed64(&manifest, table.file_number);
        PutFixed64(&manifest, table.file_size);
      }
    }
  }
  StatusOr<std::unique_ptr<WritableFile>> mf =
      options_.env->NewWritableFile(options_.name + "/MANIFEST");
  if (!mf.ok()) {
    return mf.status();
  }
  AQUILA_RETURN_IF_ERROR((*mf)->Append(manifest));
  AQUILA_RETURN_IF_ERROR((*mf)->Sync());
  return (*mf)->Close();
}

Status LsmDb::MaybeCompactLocked() {
  while (static_cast<int>(levels_[0].size()) >= options_.l0_compaction_trigger) {
    AQUILA_RETURN_IF_ERROR(CompactLevelLocked(0));
  }
  for (int level = 1; level + 1 < options_.max_levels; level++) {
    uint64_t bytes = 0;
    for (const TableMeta& table : levels_[level]) {
      bytes += table.file_size;
    }
    while (bytes > LevelMaxBytes(level) && !levels_[level].empty()) {
      AQUILA_RETURN_IF_ERROR(CompactLevelLocked(level));
      bytes = 0;
      for (const TableMeta& table : levels_[level]) {
        bytes += table.file_size;
      }
    }
  }
  return Status::Ok();
}

Status LsmDb::CompactLevelLocked(int level) {
  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
#if AQUILA_TELEMETRY_ENABLED
  static Histogram* compaction_hist =
      telemetry::Registry().GetHistogram("aquila.kvs.compaction_cycles");
  const SimClock& clock = ThisVcpu().clock();
  const uint64_t compact_start = clock.Now();
#endif
  int target = level + 1;
  AQUILA_CHECK(target < options_.max_levels);

  // Pick inputs: all of L0 (overlapping by construction), or the first
  // table of Ln; plus every overlapping table in the target level.
  std::vector<TableMeta> inputs;
  std::string lo, hi;
  if (level == 0) {
    inputs = levels_[0];
  } else {
    inputs.push_back(levels_[level].front());
  }
  for (const TableMeta& table : inputs) {
    if (lo.empty() || Slice(table.smallest).compare(Slice(lo)) < 0) {
      lo = table.smallest;
    }
    if (hi.empty() || Slice(table.largest).compare(Slice(hi)) > 0) {
      hi = table.largest;
    }
  }
  std::vector<TableMeta> target_inputs;
  for (const TableMeta& table : levels_[target]) {
    if (Slice(table.largest).compare(Slice(lo)) >= 0 &&
        Slice(table.smallest).compare(Slice(hi)) <= 0) {
      target_inputs.push_back(table);
    }
  }

  // Merge: iterators ordered newest-to-oldest so the first occurrence of a
  // user key wins.
  std::vector<std::unique_ptr<SstReader::Iterator>> iterators;
  for (const TableMeta& table : inputs) {
    iterators.push_back(std::make_unique<SstReader::Iterator>(table.reader.get()));
    stats_.bytes_compacted.fetch_add(table.file_size, std::memory_order_relaxed);
  }
  for (const TableMeta& table : target_inputs) {
    iterators.push_back(std::make_unique<SstReader::Iterator>(table.reader.get()));
    stats_.bytes_compacted.fetch_add(table.file_size, std::memory_order_relaxed);
  }
  std::vector<TableMeta> outputs;
  AQUILA_RETURN_IF_ERROR(WriteTables(std::move(iterators), target, &outputs));

  // Install: drop inputs, add outputs sorted by smallest key.
  {
    ExclusiveLockGuard guard(version_lock_);
    auto drop = [this](int lvl, const std::vector<TableMeta>& tables) {
      for (const TableMeta& table : tables) {
        auto& level_tables = levels_[lvl];
        level_tables.erase(std::remove_if(level_tables.begin(), level_tables.end(),
                                          [&](const TableMeta& t) {
                                            return t.file_number == table.file_number;
                                          }),
                           level_tables.end());
      }
    };
    drop(level, inputs);
    drop(target, target_inputs);
    for (TableMeta& table : outputs) {
      levels_[target].push_back(std::move(table));
    }
    std::sort(levels_[target].begin(), levels_[target].end(),
              [](const TableMeta& a, const TableMeta& b) {
                return Slice(a.smallest).compare(Slice(b.smallest)) < 0;
              });
  }
  for (const TableMeta& table : inputs) {
    (void)options_.env->DeleteFile(SstPath(table.file_number));
  }
  for (const TableMeta& table : target_inputs) {
    (void)options_.env->DeleteFile(SstPath(table.file_number));
  }
  AQUILA_TELEMETRY_ONLY(telemetry::RecordSpanSince(compaction_hist,
                                                   telemetry::TraceEventType::kCompaction,
                                                   clock, compact_start, level));
  return WriteManifest();
}

Status LsmDb::WriteTables(std::vector<std::unique_ptr<SstReader::Iterator>> inputs,
                          int target_level, std::vector<TableMeta>* outputs) {
  for (auto& it : inputs) {
    it->SeekToFirst();
  }
  bool bottom = true;
  {
    SharedLockGuard guard(version_lock_);
    for (int l = target_level + 1; l < options_.max_levels; l++) {
      if (!levels_[l].empty()) {
        bottom = false;
      }
    }
  }

  std::unique_ptr<WritableFile> file;
  std::unique_ptr<SstBuilder> builder;
  uint64_t file_number = 0;
  std::string last_user_key;
  bool have_last = false;

  auto finish_table = [&]() -> Status {
    if (builder == nullptr || builder->num_entries() == 0) {
      return Status::Ok();
    }
    AQUILA_RETURN_IF_ERROR(builder->Finish());
    uint64_t file_size = builder->file_size();
    AQUILA_RETURN_IF_ERROR(file->Sync());
    AQUILA_RETURN_IF_ERROR(file->Close());
    StatusOr<TableMeta> meta = OpenTable(file_number, file_size);
    if (!meta.ok()) {
      return meta.status();
    }
    outputs->push_back(std::move(*meta));
    builder.reset();
    file.reset();
    return Status::Ok();
  };

  while (true) {
    // Pick the smallest (user key asc, sequence desc); iterator order breaks
    // exact ties (same key+seq cannot occur across live tables).
    int best = -1;
    for (size_t i = 0; i < inputs.size(); i++) {
      if (!inputs[i]->Valid()) {
        continue;
      }
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      int cmp = inputs[i]->key().compare(inputs[best]->key());
      if (cmp < 0 || (cmp == 0 && inputs[i]->sequence() > inputs[best]->sequence())) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      break;
    }
    SstReader::Iterator* it = inputs[best].get();
    bool duplicate = have_last && it->key() == Slice(last_user_key);
    if (!duplicate) {
      last_user_key = it->key().ToString();
      have_last = true;
      bool drop = bottom && it->type() == ValueType::kDeletion;
      if (!drop) {
        if (builder == nullptr) {
          file_number = next_file_number_.fetch_add(1, std::memory_order_relaxed);
          StatusOr<std::unique_ptr<WritableFile>> f =
              options_.env->NewWritableFile(SstPath(file_number));
          if (!f.ok()) {
            return f.status();
          }
          file = std::move(*f);
          builder = std::make_unique<SstBuilder>(file.get(), options_.sst);
        }
        builder->Add(it->key(), it->sequence(), it->type(), it->value());
        if (builder->file_size() >= options_.sst_target_bytes) {
          AQUILA_RETURN_IF_ERROR(finish_table());
        }
      }
    }
    it->Next();
  }
  return finish_table();
}

Status LsmDb::Get(const Slice& key, std::string* value, bool* found) {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  *found = false;
  bool deleted = false;
  std::shared_ptr<MemTable> memtable;
  {
    SharedLockGuard guard(version_lock_);
    memtable = memtable_;
  }
  {
    ScopedMeasure measure(ThisThreadClock(), CostCategory::kUserWork);
    if (memtable->Get(key, value, &deleted)) {
      stats_.memtable_hits.fetch_add(1, std::memory_order_relaxed);
      *found = !deleted;
      return Status::Ok();
    }
  }
  SharedLockGuard guard(version_lock_);
  // L0: newest table first; tables overlap.
  for (const TableMeta& table : levels_[0]) {
    if (key.compare(Slice(table.smallest)) < 0 || key.compare(Slice(table.largest)) > 0) {
      continue;
    }
    bool table_found;
    AQUILA_RETURN_IF_ERROR(table.reader->Get(key, value, &table_found, &deleted));
    if (table_found) {
      *found = !deleted;
      return Status::Ok();
    }
  }
  // L1+: at most one candidate per level.
  for (size_t level = 1; level < levels_.size(); level++) {
    const auto& tables = levels_[level];
    auto it = std::lower_bound(tables.begin(), tables.end(), key,
                               [](const TableMeta& t, const Slice& k) {
                                 return Slice(t.largest).compare(k) < 0;
                               });
    if (it == tables.end() || key.compare(Slice(it->smallest)) < 0) {
      continue;
    }
    bool table_found;
    AQUILA_RETURN_IF_ERROR(it->reader->Get(key, value, &table_found, &deleted));
    if (table_found) {
      *found = !deleted;
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Status LsmDb::Scan(const Slice& start, int count,
                   const std::function<void(const Slice&, const Slice&)>& visit) {
  // Snapshot the memtable + table set, then k-way merge all sources.
  std::shared_ptr<MemTable> memtable;
  std::vector<TableMeta> tables;
  {
    SharedLockGuard guard(version_lock_);
    memtable = memtable_;
    for (const auto& level : levels_) {
      for (const TableMeta& table : level) {
        tables.push_back(table);
      }
    }
  }
  std::vector<std::unique_ptr<SstReader::Iterator>> iterators;
  iterators.reserve(tables.size());
  for (const TableMeta& table : tables) {
    auto it = std::make_unique<SstReader::Iterator>(table.reader.get());
    it->Seek(start);
    iterators.push_back(std::move(it));
  }
  MemTable::Iterator mem_it(memtable.get());
  mem_it.Seek(start);

  std::string last_user_key;
  bool have_last = false;
  int emitted = 0;
  while (emitted < count) {
    // Candidates: the memtable entry and every table iterator's head.
    int best = -1;
    bool best_is_mem = false;
    Slice best_key;
    uint64_t best_seq = 0;
    if (mem_it.Valid()) {
      best_is_mem = true;
      best_key = mem_it.key();
      best_seq = mem_it.sequence();
    }
    for (size_t i = 0; i < iterators.size(); i++) {
      if (!iterators[i]->Valid()) {
        continue;
      }
      int cmp = (best_is_mem || best >= 0) ? iterators[i]->key().compare(best_key) : -1;
      if ((!best_is_mem && best < 0) || cmp < 0 ||
          (cmp == 0 && iterators[i]->sequence() > best_seq)) {
        best = static_cast<int>(i);
        best_is_mem = false;
        best_key = iterators[i]->key();
        best_seq = iterators[i]->sequence();
      }
    }
    if (!best_is_mem && best < 0) {
      break;  // all sources exhausted
    }

    Slice key = best_is_mem ? mem_it.key() : iterators[best]->key();
    ValueType type = best_is_mem ? mem_it.type() : iterators[best]->type();
    Slice value = best_is_mem ? mem_it.value() : iterators[best]->value();
    bool duplicate = have_last && key == Slice(last_user_key);
    if (!duplicate) {
      last_user_key = key.ToString();
      have_last = true;
      if (type == ValueType::kValue) {
        visit(key, value);
        emitted++;
      }
    }
    if (best_is_mem) {
      mem_it.Next();
    } else {
      iterators[best]->Next();
    }
  }
  return Status::Ok();
}

Status LsmDb::Flush() {
  std::lock_guard<std::mutex> guard(write_mu_);
  AQUILA_RETURN_IF_ERROR(FlushMemTableLocked());
  return MaybeCompactLocked();
}

int LsmDb::NumLevelFiles(int level) const {
  SharedLockGuard guard(version_lock_);
  return static_cast<int>(levels_[level].size());
}

uint64_t LsmDb::TotalSstBytes() const {
  SharedLockGuard guard(version_lock_);
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const TableMeta& table : level) {
      total += table.file_size;
    }
  }
  return total;
}

}  // namespace aquila
