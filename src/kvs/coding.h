// Fixed- and variable-length integer coding (leveldb-compatible layouts).
#ifndef AQUILA_SRC_KVS_CODING_H_
#define AQUILA_SRC_KVS_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/kvs/slice.h"

namespace aquila {

inline void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

// In-place overwrite of an already-appended fixed32 (e.g. patching a
// checksum computed after the payload was serialized).
inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, sizeof(v)); }

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int n = 0;
  while (v >= 128) {
    buf[n++] = static_cast<unsigned char>(v) | 128;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<const char*>(buf), n);
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 128) {
    buf[n++] = static_cast<unsigned char>(v) | 128;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<const char*>(buf), n);
}

// Returns pointer past the decoded value, or nullptr on malformed input.
inline const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<unsigned char>(*p++);
    if (byte & 128) {
      result |= (byte & 127) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

inline const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p++);
    if (byte & 128) {
      result |= (byte & 127) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

inline bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len;
  const char* p = GetVarint32Ptr(input->data(), input->data() + input->size(), &len);
  if (p == nullptr || static_cast<size_t>(input->data() + input->size() - p) < len) {
    return false;
  }
  *result = Slice(p, len);
  *input = Slice(p + len, input->data() + input->size() - p - len);
  return true;
}

inline void PutLengthPrefixedSlice(std::string* dst, const Slice& s) {
  PutVarint32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

}  // namespace aquila

#endif  // AQUILA_SRC_KVS_CODING_H_
