#include "src/kvs/env.h"

#include <algorithm>

#include "src/util/bitops.h"
#include "src/vmx/cost_model.h"

namespace aquila {

namespace {

// Logical file size lives in an xattr: blob sizes are cluster-rounded.
constexpr char kSizeAttr[] = "file_size";

Status StoreSize(Blobstore* store, BlobId blob, uint64_t size) {
  return store->SetXattr(blob, kSizeAttr, std::to_string(size));
}

uint64_t LoadSize(Blobstore* store, BlobId blob) {
  StatusOr<std::string> attr = store->GetXattr(blob, kSizeAttr);
  if (!attr.ok()) {
    return 0;
  }
  return std::stoull(*attr);
}

class BlobWritableFile : public WritableFile {
 public:
  BlobWritableFile(const KvsEnv::Options& options, BlobId blob)
      : options_(options), blob_(blob) {}

  ~BlobWritableFile() override { (void)Close(); }

  Status Append(const Slice& data) override {
    buffer_.append(data.data(), data.size());
    if (buffer_.size() >= options_.write_buffer_bytes) {
      return FlushBuffer();
    }
    return Status::Ok();
  }

  Status Sync() override {
    AQUILA_RETURN_IF_ERROR(FlushBuffer());
    Vcpu& vcpu = ThisVcpu();
    vcpu.ChargeSyscall();  // fsync
    return options_.store->device()->Flush(vcpu);
  }

  Status Close() override {
    if (closed_) {
      return Status::Ok();
    }
    AQUILA_RETURN_IF_ERROR(FlushBuffer());
    closed_ = true;
    return StoreSize(options_.store, blob_, size_);
  }

  uint64_t Size() const override { return size_ + buffer_.size(); }

 private:
  Status FlushBuffer() {
    if (buffer_.empty()) {
      return Status::Ok();
    }
    Vcpu& vcpu = ThisVcpu();
    // One write syscall for the whole buffered chunk (the large sequential
    // I/O pattern of flushes/compactions).
    vcpu.ChargeSyscall();
    vcpu.clock().Charge(CostCategory::kSyscall, GlobalCostModel().kernel_io_path);

    uint64_t needed = size_ + buffer_.size();
    uint64_t cluster = options_.store->options().cluster_size;
    StatusOr<uint64_t> clusters = options_.store->BlobClusterCount(blob_);
    if (!clusters.ok()) {
      return clusters.status();
    }
    uint64_t have = *clusters * cluster;
    if (needed > have) {
      AQUILA_RETURN_IF_ERROR(
          options_.store->ResizeBlob(blob_, AlignUp(needed, cluster) / cluster));
    }
    AQUILA_RETURN_IF_ERROR(options_.store->WriteBlob(
        vcpu, blob_, size_,
        std::span(reinterpret_cast<const uint8_t*>(buffer_.data()), buffer_.size())));
    size_ += buffer_.size();
    buffer_.clear();
    AQUILA_RETURN_IF_ERROR(StoreSize(options_.store, blob_, size_));
    return Status::Ok();
  }

  KvsEnv::Options options_;
  BlobId blob_;
  std::string buffer_;
  uint64_t size_ = 0;
  bool closed_ = false;
};

class DirectIoFile : public RandomAccessFile {
 public:
  DirectIoFile(const KvsEnv::Options& options, BlobId blob, uint64_t size)
      : options_(options), blob_(blob), size_(size) {}

  Status Read(uint64_t offset, size_t n, char* scratch, Slice* result) override {
    if (offset >= size_) {
      *result = Slice();
      return Status::Ok();
    }
    n = std::min<uint64_t>(n, size_ - offset);
    Vcpu& vcpu = ThisVcpu();
    // pread(2): kernel entry + filesystem/block path, then the device.
    vcpu.ChargeSyscall();
    vcpu.clock().Charge(CostCategory::kSyscall, GlobalCostModel().kernel_io_path);
    AQUILA_RETURN_IF_ERROR(options_.store->ReadBlob(
        vcpu, blob_, offset, std::span(reinterpret_cast<uint8_t*>(scratch), n)));
    *result = Slice(scratch, n);
    return Status::Ok();
  }

  uint64_t Size() const override { return size_; }

 private:
  KvsEnv::Options options_;
  BlobId blob_;
  uint64_t size_;
};

class MmioFile : public RandomAccessFile {
 public:
  MmioFile(MmioEngine* engine, std::unique_ptr<BlobBacking> backing, MemoryMap* map,
           uint64_t size)
      : engine_(engine), backing_(std::move(backing)), map_(map), size_(size) {}

  ~MmioFile() override { (void)engine_->Unmap(map_); }

  Status Read(uint64_t offset, size_t n, char* scratch, Slice* result) override {
    if (offset >= size_) {
      *result = Slice();
      return Status::Ok();
    }
    n = std::min<uint64_t>(n, size_ - offset);
    AQUILA_RETURN_IF_ERROR(
        map_->Read(offset, std::span(reinterpret_cast<uint8_t*>(scratch), n)));
    *result = Slice(scratch, n);
    return Status::Ok();
  }

  uint64_t Size() const override { return size_; }

 private:
  MmioEngine* engine_;
  std::unique_ptr<BlobBacking> backing_;
  MemoryMap* map_;
  uint64_t size_;
};

}  // namespace

KvsEnv::KvsEnv(const Options& options) : options_(options) {
  AQUILA_CHECK(options_.store != nullptr && options_.ns != nullptr);
  AQUILA_CHECK(options_.read_path != ReadPath::kMmio || options_.mmio_engine != nullptr);
}

StatusOr<std::unique_ptr<WritableFile>> KvsEnv::NewWritableFile(const std::string& path) {
  // open(O_CREAT|O_TRUNC).
  ThisVcpu().ChargeSyscall();
  if (FileExists(path)) {
    AQUILA_RETURN_IF_ERROR(options_.ns->Unlink(path));
  }
  StatusOr<BlobId> blob = options_.ns->Open(path, /*create=*/true, 0);
  if (!blob.ok()) {
    return blob.status();
  }
  return std::unique_ptr<WritableFile>(std::make_unique<BlobWritableFile>(options_, *blob));
}

StatusOr<std::unique_ptr<RandomAccessFile>> KvsEnv::NewRandomAccessFile(
    const std::string& path) {
  ThisVcpu().ChargeSyscall();  // open(2), intercepted by Aquila in mmio mode
  StatusOr<BlobId> blob = options_.ns->Open(path, /*create=*/false);
  if (!blob.ok()) {
    return blob.status();
  }
  uint64_t size = LoadSize(options_.store, *blob);
  if (options_.read_path == ReadPath::kDirectIo) {
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<DirectIoFile>(options_, *blob, size));
  }
  auto backing = std::make_unique<BlobBacking>(options_.store, *blob);
  StatusOr<MemoryMap*> map = options_.mmio_engine->Map(backing.get(), size, kProtRead);
  if (!map.ok()) {
    return map.status();
  }
  // Note: no MADV_RANDOM here. The paper's Fig 5(b) observes that mmap
  // "prefetches 128KB for 1KB reads" on SST misses — the default fault
  // read-ahead stays on, which is exactly what sinks the mmap baseline when
  // the dataset does not fit (Aquila's default window only opens on
  // kSequential advice).
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<MmioFile>(options_.mmio_engine, std::move(backing), *map, size));
}

Status KvsEnv::DeleteFile(const std::string& path) {
  ThisVcpu().ChargeSyscall();
  return options_.ns->Unlink(path);
}

Status KvsEnv::RenameFile(const std::string& from, const std::string& to) {
  ThisVcpu().ChargeSyscall();
  return options_.ns->Rename(from, to);
}

bool KvsEnv::FileExists(const std::string& path) { return options_.ns->Lookup(path).ok(); }

StatusOr<uint64_t> KvsEnv::GetFileSize(const std::string& path) {
  StatusOr<BlobId> blob = options_.ns->Lookup(path);
  if (!blob.ok()) {
    return blob.status();
  }
  return LoadSize(options_.store, *blob);
}

std::vector<std::string> KvsEnv::ListFiles(const std::string& prefix) {
  std::vector<std::string> out;
  for (const std::string& name : options_.ns->List()) {
    if (name.rfind(prefix, 0) == 0) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace aquila
