// File environment for the key-value stores, over the blobstore.
//
// This is where the paper's I/O-path configurations plug in (§5, §6.1):
//   kDirectIo — explicit read()/write() with O_DIRECT semantics: every read
//       charges a syscall + kernel I/O path + device time. Paired with the
//       user-space block cache, this is the recommended RocksDB setup the
//       paper baselines against.
//   kMmio     — SST files are memory-mapped through an MmioEngine (Aquila or
//       the Linux-mmap simulator); reads are loads, hits are free, misses
//       fault. This is "RocksDB with mmap/Aquila".
// Writes (memtable flushes, compaction outputs, WAL) always use the
// explicit path — RocksDB does the same, and the paper notes writes issue
// large I/Os that are device-bound (§6.1).
#ifndef AQUILA_SRC_KVS_ENV_H_
#define AQUILA_SRC_KVS_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "src/blob/blob_namespace.h"
#include "src/core/mmio.h"
#include "src/kvs/slice.h"

namespace aquila {

class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  // Reads up to `n` bytes at `offset`; *result points into scratch (or into
  // cache-resident memory for mmio files).
  virtual Status Read(uint64_t offset, size_t n, char* scratch, Slice* result) = 0;
  virtual uint64_t Size() const = 0;
};

class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  virtual uint64_t Size() const = 0;
};

enum class ReadPath {
  kDirectIo,  // explicit syscalls + user-space cache
  kMmio,      // memory-mapped through an MmioEngine
};

class KvsEnv {
 public:
  struct Options {
    Blobstore* store = nullptr;
    BlobNamespace* ns = nullptr;
    ReadPath read_path = ReadPath::kDirectIo;
    // Engine for kMmio reads (Aquila or LinuxMmapEngine).
    MmioEngine* mmio_engine = nullptr;
    // Write buffer before hitting the device (RocksDB flushes ~1 MB chunks).
    uint64_t write_buffer_bytes = 1ull << 20;
  };

  explicit KvsEnv(const Options& options);

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(const std::string& path);
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(const std::string& path);

  Status DeleteFile(const std::string& path);
  Status RenameFile(const std::string& from, const std::string& to);
  bool FileExists(const std::string& path);
  StatusOr<uint64_t> GetFileSize(const std::string& path);
  std::vector<std::string> ListFiles(const std::string& prefix);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_KVS_ENV_H_
