// Byte-slice and key comparison primitives for the key-value stores.
#ifndef AQUILA_SRC_KVS_SLICE_H_
#define AQUILA_SRC_KVS_SLICE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace aquila {

// Non-owning view of bytes. Matches the leveldb/rocksdb Slice contract: the
// referenced storage must outlive the slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  char operator[](size_t i) const { return data_[i]; }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  int compare(const Slice& other) const {
    size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) {
        return -1;
      }
      if (size_ > other.size_) {
        return 1;
      }
    }
    return r;
  }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ && std::memcmp(data_, other.data_, size_) == 0;
  }
  bool operator!=(const Slice& other) const { return !(*this == other); }
  bool operator<(const Slice& other) const { return compare(other) < 0; }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ && std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_KVS_SLICE_H_
