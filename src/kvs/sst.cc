#include "src/kvs/sst.h"

#include <algorithm>

#include "src/kvs/coding.h"
#include "src/util/crc32c.h"
#include "src/util/logging.h"

namespace aquila {

namespace {

constexpr uint64_t kSstMagic = 0x53535441514c3231ull;  // "SSTAQL21"
constexpr size_t kFooterSize = 40;

struct ParsedEntry {
  Slice key;
  uint64_t tag;
  Slice value;
  const char* next;
};

// Returns false on corruption.
bool ParseEntry(const char* p, const char* limit, ParsedEntry* out) {
  uint32_t klen, vlen;
  p = GetVarint32Ptr(p, limit, &klen);
  if (p == nullptr) {
    return false;
  }
  p = GetVarint32Ptr(p, limit, &vlen);
  if (p == nullptr || p + 8 + klen + vlen > limit) {
    return false;
  }
  out->tag = DecodeFixed64(p);
  p += 8;
  out->key = Slice(p, klen);
  out->value = Slice(p + klen, vlen);
  out->next = p + klen + vlen;
  return true;
}

}  // namespace

SstBuilder::SstBuilder(WritableFile* file, const SstOptions& options)
    : file_(file), options_(options), bloom_(options.bloom_bits_per_key) {}

void SstBuilder::Add(const Slice& key, uint64_t sequence, ValueType type, const Slice& value) {
  if (num_entries_ == 0) {
    smallest_ = key.ToString();
  }
  largest_ = key.ToString();
  bloom_.AddKey(key);

  PutVarint32(&pending_block_, static_cast<uint32_t>(key.size()));
  PutVarint32(&pending_block_, static_cast<uint32_t>(value.size()));
  PutFixed64(&pending_block_, (sequence << 8) | static_cast<uint64_t>(type));
  pending_block_.append(key.data(), key.size());
  pending_block_.append(value.data(), value.size());
  pending_last_key_ = key.ToString();
  num_entries_++;

  if (pending_block_.size() >= options_.block_size) {
    FlushBlock();
  }
}

void SstBuilder::FlushBlock() {
  if (pending_block_.empty()) {
    return;
  }
  // Index entries record the payload size; a fixed32 CRC32C trailer follows
  // each data block on disk (leveldb-style per-block checksum).
  PutLengthPrefixedSlice(&index_, pending_last_key_);
  PutFixed64(&index_, offset_);
  PutFixed64(&index_, pending_block_.size());
  PutFixed32(&pending_block_, Crc32c(pending_block_.data(), pending_block_.size()));
  Status status = file_->Append(pending_block_);
  if (!status.ok()) {
    status_ = status;
  }
  offset_ += pending_block_.size();
  pending_block_.clear();
}

Status SstBuilder::Finish() {
  FlushBlock();
  AQUILA_RETURN_IF_ERROR(status_);

  std::string filter = bloom_.Finish();
  uint64_t filter_off = offset_;
  AQUILA_RETURN_IF_ERROR(file_->Append(filter));
  offset_ += filter.size();

  uint64_t index_off = offset_;
  AQUILA_RETURN_IF_ERROR(file_->Append(index_));
  offset_ += index_.size();

  std::string footer;
  PutFixed64(&footer, index_off);
  PutFixed64(&footer, index_.size());
  PutFixed64(&footer, filter_off);
  PutFixed64(&footer, filter.size());
  PutFixed64(&footer, kSstMagic);
  AQUILA_CHECK(footer.size() == kFooterSize);
  AQUILA_RETURN_IF_ERROR(file_->Append(footer));
  offset_ += footer.size();
  return Status::Ok();
}

StatusOr<std::unique_ptr<SstReader>> SstReader::Open(std::unique_ptr<RandomAccessFile> file,
                                                     BlockCache* cache, uint64_t file_id) {
  uint64_t size = file->Size();
  if (size < kFooterSize) {
    return Status::IoError("SST too small");
  }
  char footer_buf[kFooterSize];
  Slice footer;
  AQUILA_RETURN_IF_ERROR(file->Read(size - kFooterSize, kFooterSize, footer_buf, &footer));
  if (footer.size() != kFooterSize ||
      DecodeFixed64(footer.data() + 32) != kSstMagic) {
    return Status::IoError("bad SST footer");
  }
  uint64_t index_off = DecodeFixed64(footer.data());
  uint64_t index_size = DecodeFixed64(footer.data() + 8);
  uint64_t filter_off = DecodeFixed64(footer.data() + 16);
  uint64_t filter_size = DecodeFixed64(footer.data() + 24);
  if (index_off + index_size > size || filter_off + filter_size > size) {
    return Status::IoError("bad SST footer ranges");
  }

  auto reader = std::unique_ptr<SstReader>(new SstReader());
  reader->cache_ = cache;
  reader->file_id_ = file_id;

  // Index and filter blocks are read once and pinned (RocksDB default).
  std::string index_data(index_size, '\0');
  Slice index_slice;
  AQUILA_RETURN_IF_ERROR(file->Read(index_off, index_size, index_data.data(), &index_slice));
  reader->filter_data_.resize(filter_size);
  Slice filter_slice;
  AQUILA_RETURN_IF_ERROR(
      file->Read(filter_off, filter_size, reader->filter_data_.data(), &filter_slice));
  if (filter_slice.data() != reader->filter_data_.data()) {
    reader->filter_data_.assign(filter_slice.data(), filter_slice.size());
  }

  Slice in(index_slice.data(), index_slice.size());
  while (!in.empty()) {
    Slice last_key;
    if (!GetLengthPrefixedSlice(&in, &last_key) || in.size() < 16) {
      return Status::IoError("corrupt SST index");
    }
    IndexEntry entry;
    entry.last_key = last_key.ToString();
    entry.offset = DecodeFixed64(in.data());
    entry.size = DecodeFixed64(in.data() + 8);
    in = Slice(in.data() + 16, in.size() - 16);
    reader->index_.push_back(std::move(entry));
  }
  reader->file_ = std::move(file);
  if (!reader->index_.empty()) {
    reader->largest_ = reader->index_.back().last_key;
    // Smallest: first key of the first block.
    StatusOr<std::shared_ptr<const std::string>> block = reader->ReadBlock(0);
    if (!block.ok()) {
      return block.status();
    }
    ParsedEntry entry;
    if (!ParseEntry((*block)->data(), (*block)->data() + (*block)->size(), &entry)) {
      return Status::IoError("corrupt first SST block");
    }
    reader->smallest_ = entry.key.ToString();
  }
  return reader;
}

StatusOr<std::shared_ptr<const std::string>> SstReader::ReadBlock(size_t block_index) {
  const IndexEntry& entry = index_[block_index];
  if (cache_ != nullptr) {
    std::shared_ptr<const std::string> cached = cache_->Lookup(file_id_, entry.offset);
    if (cached != nullptr) {
      return cached;
    }
  }
  auto block = std::make_shared<std::string>(entry.size + 4, '\0');
  Slice result;
  AQUILA_RETURN_IF_ERROR(file_->Read(entry.offset, entry.size + 4, block->data(), &result));
  if (result.size() != entry.size + 4) {
    return Status::IoError("short SST block read");
  }
  if (result.data() != block->data()) {
    block->assign(result.data(), result.size());
  }
  if (Crc32c(block->data(), entry.size) != DecodeFixed32(block->data() + entry.size)) {
    return Status::IoError("SST block checksum mismatch");
  }
  block->resize(entry.size);  // drop the CRC trailer; callers see payload only
  std::shared_ptr<const std::string> shared = std::move(block);
  if (cache_ != nullptr) {
    cache_->Insert(file_id_, entry.offset, shared);
  }
  return shared;
}

Status SstReader::Get(const Slice& key, std::string* value, bool* found, bool* deleted) {
  *found = false;
  *deleted = false;
  if (index_.empty()) {
    return Status::Ok();
  }
  {
    ScopedMeasure measure(ThisThreadClock(), CostCategory::kUserWork);
    if (!BloomFilter(Slice(filter_data_)).MayContain(key)) {
      return Status::Ok();
    }
  }
  // First block whose last key >= key.
  auto it = std::lower_bound(index_.begin(), index_.end(), key,
                             [](const IndexEntry& e, const Slice& k) {
                               return Slice(e.last_key).compare(k) < 0;
                             });
  if (it == index_.end()) {
    return Status::Ok();
  }
  StatusOr<std::shared_ptr<const std::string>> block =
      ReadBlock(static_cast<size_t>(it - index_.begin()));
  if (!block.ok()) {
    return block.status();
  }
  ScopedMeasure measure(ThisThreadClock(), CostCategory::kUserWork);
  const char* p = (*block)->data();
  const char* limit = p + (*block)->size();
  while (p < limit) {
    ParsedEntry entry;
    if (!ParseEntry(p, limit, &entry)) {
      return Status::IoError("corrupt SST block");
    }
    int cmp = entry.key.compare(key);
    if (cmp == 0) {
      // Newest version first (sequence descending within a user key).
      *found = true;
      if (static_cast<ValueType>(entry.tag & 0xff) == ValueType::kDeletion) {
        *deleted = true;
      } else {
        value->assign(entry.value.data(), entry.value.size());
      }
      return Status::Ok();
    }
    if (cmp > 0) {
      return Status::Ok();
    }
    p = entry.next;
  }
  return Status::Ok();
}

SstReader::Iterator::Iterator(SstReader* reader) : reader_(reader) {}

bool SstReader::Iterator::LoadBlock(size_t block_index) {
  if (block_index >= reader_->index_.size()) {
    valid_ = false;
    return false;
  }
  StatusOr<std::shared_ptr<const std::string>> block = reader_->ReadBlock(block_index);
  if (!block.ok()) {
    status_ = block.status();
    valid_ = false;
    return false;
  }
  block_index_ = block_index;
  block_ = *block;
  pos_ = block_->data();
  return true;
}

bool SstReader::Iterator::ParseCurrent() {
  if (pos_ >= block_->data() + block_->size()) {
    // Advance to the next block.
    if (!LoadBlock(block_index_ + 1)) {
      return false;
    }
  }
  ParsedEntry entry;
  if (!ParseEntry(pos_, block_->data() + block_->size(), &entry)) {
    status_ = Status::IoError("corrupt SST block");
    valid_ = false;
    return false;
  }
  key_ = entry.key;
  tag_ = entry.tag;
  value_ = entry.value;
  valid_ = true;
  return true;
}

void SstReader::Iterator::SeekToFirst() {
  if (!LoadBlock(0)) {
    return;
  }
  ParseCurrent();
}

void SstReader::Iterator::Seek(const Slice& key) {
  auto it = std::lower_bound(reader_->index_.begin(), reader_->index_.end(), key,
                             [](const IndexEntry& e, const Slice& k) {
                               return Slice(e.last_key).compare(k) < 0;
                             });
  if (it == reader_->index_.end()) {
    valid_ = false;
    return;
  }
  if (!LoadBlock(static_cast<size_t>(it - reader_->index_.begin()))) {
    return;
  }
  while (ParseCurrent()) {
    if (key_.compare(key) >= 0) {
      return;
    }
    pos_ = value_.data() + value_.size();
  }
}

void SstReader::Iterator::Next() {
  AQUILA_DCHECK(valid_);
  pos_ = value_.data() + value_.size();
  ParseCurrent();
}

}  // namespace aquila
