// Common key-value store interface consumed by the YCSB runner.
#ifndef AQUILA_SRC_KVS_KV_STORE_H_
#define AQUILA_SRC_KVS_KV_STORE_H_

#include <functional>
#include <string>

#include "src/kvs/slice.h"
#include "src/util/status.h"

namespace aquila {

class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Status Delete(const Slice& key) = 0;
  // *found=false when the key is absent (or deleted).
  virtual Status Get(const Slice& key, std::string* value, bool* found) = 0;
  // Visits up to `count` key/value pairs starting at the first key >= start.
  virtual Status Scan(const Slice& start, int count,
                      const std::function<void(const Slice&, const Slice&)>& visit) = 0;
};

}  // namespace aquila

#endif  // AQUILA_SRC_KVS_KV_STORE_H_
