#include "src/kvs/memtable.h"

#include "src/kvs/coding.h"
#include "src/util/logging.h"

namespace aquila {

// Entry layout: varint32 klen | key | fixed64 tag | varint32 vlen | value,
// where tag = (sequence << 8) | type.
namespace {

struct DecodedEntry {
  Slice key;
  uint64_t tag;
  Slice value;
};

DecodedEntry DecodeEntry(const char* entry) {
  DecodedEntry out;
  uint32_t klen = 0;
  const char* p = GetVarint32Ptr(entry, entry + 5, &klen);
  out.key = Slice(p, klen);
  p += klen;
  out.tag = DecodeFixed64(p);
  p += 8;
  uint32_t vlen = 0;
  p = GetVarint32Ptr(p, p + 5, &vlen);
  out.value = Slice(p, vlen);
  return out;
}

}  // namespace

struct MemTable::Node {
  const char* entry;
  // Flexible array of next pointers, one per level.
  std::atomic<Node*> next[1];

  Node* Next(int level) { return next[level].load(std::memory_order_acquire); }
  void SetNext(int level, Node* node) { next[level].store(node, std::memory_order_release); }
};

MemTable::MemTable() {
  char* unused;
  head_ = NewNode(0, kMaxHeight, &unused);
  head_->entry = nullptr;
  for (int i = 0; i < kMaxHeight; i++) {
    head_->SetNext(i, nullptr);
  }
}

MemTable::Node* MemTable::NewNode(size_t entry_bytes, int height, char** entry_out) {
  size_t node_bytes = sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1);
  char* mem = arena_.AllocateAligned(node_bytes + entry_bytes);
  Node* node = reinterpret_cast<Node*>(mem);
  *entry_out = mem + node_bytes;
  node->entry = *entry_out;
  return node;
}

int MemTable::RandomHeight() {
  int height = 1;
  while (height < kMaxHeight && rng_.OneIn(4)) {
    height++;
  }
  return height;
}

int MemTable::CompareEntries(const char* a, const char* b) const {
  DecodedEntry da = DecodeEntry(a);
  DecodedEntry db = DecodeEntry(b);
  int r = da.key.compare(db.key);
  if (r != 0) {
    return r;
  }
  // Descending sequence: newer entries sort first.
  if (da.tag > db.tag) {
    return -1;
  }
  if (da.tag < db.tag) {
    return 1;
  }
  return 0;
}

int MemTable::CompareEntryToKey(const char* entry, const Slice& key, uint64_t sequence) const {
  DecodedEntry de = DecodeEntry(entry);
  int r = de.key.compare(key);
  if (r != 0) {
    return r;
  }
  uint64_t tag = (sequence << 8) | 0xff;
  if (de.tag > tag) {
    return -1;
  }
  if (de.tag < tag) {
    return 1;
  }
  return 0;
}

MemTable::Node* MemTable::FindGreaterOrEqual(const Slice& key, uint64_t sequence,
                                             Node** prev) const {
  Node* node = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  while (true) {
    Node* next = node->Next(level);
    if (next != nullptr && CompareEntryToKey(next->entry, key, sequence) < 0) {
      node = next;
    } else {
      if (prev != nullptr) {
        prev[level] = node;
      }
      if (level == 0) {
        return next;
      }
      level--;
    }
  }
}

void MemTable::Add(uint64_t sequence, ValueType type, const Slice& key, const Slice& value) {
  std::string encoded;
  encoded.reserve(key.size() + value.size() + 20);
  PutVarint32(&encoded, static_cast<uint32_t>(key.size()));
  encoded.append(key.data(), key.size());
  PutFixed64(&encoded, (sequence << 8) | static_cast<uint64_t>(type));
  PutVarint32(&encoded, static_cast<uint32_t>(value.size()));
  encoded.append(value.data(), value.size());

  int height = RandomHeight();
  char* entry;
  Node* node = NewNode(encoded.size(), height, &entry);
  std::memcpy(entry, encoded.data(), encoded.size());

  Node* prev[kMaxHeight];
  for (int i = 0; i < kMaxHeight; i++) {
    prev[i] = head_;
  }
  FindGreaterOrEqual(key, sequence, prev);

  int cur_height = max_height_.load(std::memory_order_relaxed);
  if (height > cur_height) {
    max_height_.store(height, std::memory_order_relaxed);
  }
  for (int i = 0; i < height; i++) {
    node->SetNext(i, prev[i]->Next(i));
    prev[i]->SetNext(i, node);
  }
  entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(const Slice& key, std::string* found_value, bool* deleted) const {
  // Newest entry for `key` is the first with user key == key (sequence
  // descending), so seek with the max sequence.
  Node* node = FindGreaterOrEqual(key, UINT64_MAX >> 8, nullptr);
  if (node == nullptr) {
    return false;
  }
  DecodedEntry entry = DecodeEntry(node->entry);
  if (entry.key != key) {
    return false;
  }
  ValueType type = static_cast<ValueType>(entry.tag & 0xff);
  if (type == ValueType::kDeletion) {
    *deleted = true;
    return true;
  }
  *deleted = false;
  found_value->assign(entry.value.data(), entry.value.size());
  return true;
}

MemTable::Iterator::Iterator(const MemTable* table) : table_(table), node_(nullptr) {}

bool MemTable::Iterator::Valid() const { return node_ != nullptr; }

void MemTable::Iterator::SeekToFirst() {
  node_ = const_cast<Node*>(table_->head_)->Next(0);
}

void MemTable::Iterator::Seek(const Slice& key) {
  node_ = table_->FindGreaterOrEqual(key, UINT64_MAX >> 8, nullptr);
}

void MemTable::Iterator::Next() {
  AQUILA_DCHECK(Valid());
  node_ = const_cast<Node*>(static_cast<const Node*>(node_))->Next(0);
}

Slice MemTable::Iterator::key() const {
  return DecodeEntry(static_cast<const Node*>(node_)->entry).key;
}

uint64_t MemTable::Iterator::sequence() const {
  return DecodeEntry(static_cast<const Node*>(node_)->entry).tag >> 8;
}

ValueType MemTable::Iterator::type() const {
  return static_cast<ValueType>(DecodeEntry(static_cast<const Node*>(node_)->entry).tag & 0xff);
}

Slice MemTable::Iterator::value() const {
  return DecodeEntry(static_cast<const Node*>(node_)->entry).value;
}

}  // namespace aquila
