// Kreon-like persistent key-value store: designed from the ground up to use
// mmio in the common path (§5, [48,49]).
//
// Instead of SSTs, Kreon keeps all keys and values in a log and indexes them
// with a B-tree per level; this trades sequential device access for fewer
// CPU cycles and less I/O amplification — which is exactly what makes its
// performance track the quality of the mmio path underneath (Fig 9:
// kmmap vs Aquila). This reproduction implements the design's data path as
// a single-level B+tree plus value log, both living inside one mmio mapping
// on a raw device: every index node touch and every log access is a
// load/store against the mapping, persistence is msync (Kreon's
// Copy-on-Write commit is simplified to a metadata-last msync ordering).
//
// Layout inside the mapping:
//   page 0        : superblock (magic, root, allocation cursors)
//   pages 1..N    : B+tree nodes (4 KB each, bump-allocated)
//   log area      : length-prefixed key/value records, appended
// Keys are limited to 48 bytes (YCSB keys are ~30 B).
#ifndef AQUILA_SRC_KVS_KREON_DB_H_
#define AQUILA_SRC_KVS_KREON_DB_H_

#include <memory>

#include "src/core/mmio.h"
#include "src/kvs/kv_store.h"
#include "src/util/spinlock.h"

namespace aquila {

class KreonDb : public KvStore {
 public:
  struct Options {
    // Fraction of the mapping reserved for B+tree nodes (the rest is log).
    uint32_t index_percent = 25;
    // msync every N puts (0 = only on Persist()/close).
    uint32_t sync_interval = 0;
  };

  static constexpr size_t kMaxKeyBytes = 48;

  // The map must cover a device/blob dedicated to this store. Formats the
  // region when no valid superblock is found; otherwise recovers.
  static StatusOr<std::unique_ptr<KreonDb>> Open(MemoryMap* map, const Options& options);
  ~KreonDb() override;

  Status Put(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Status Get(const Slice& key, std::string* value, bool* found) override;
  Status Scan(const Slice& start, int count,
              const std::function<void(const Slice&, const Slice&)>& visit) override;

  // msync: index and log durable on the device.
  Status Persist();

  uint64_t entries() const { return entries_; }
  uint64_t log_bytes_used() const { return log_head_; }
  uint64_t index_pages_used() const { return next_index_page_; }

 private:
  struct NodeRef;

  KreonDb(MemoryMap* map, const Options& options);

  Status Format();
  Status Recover();
  Status WriteSuper();

  StatusOr<uint64_t> AppendLog(const Slice& key, const Slice& value, bool tombstone);
  StatusOr<uint64_t> AllocNode(bool leaf);

  // B+tree plumbing; callers hold tree_lock_.
  Status FindLeaf(const Slice& key, uint64_t* leaf_page,
                  std::vector<uint64_t>* path = nullptr);
  Status InsertIntoLeaf(uint64_t leaf_page, const std::vector<uint64_t>& path,
                        const Slice& key, uint64_t log_offset);

  MemoryMap* map_;
  Options options_;
  RwSpinLock tree_lock_;

  uint64_t root_page_ = 0;
  uint64_t next_index_page_ = 1;
  uint64_t index_pages_ = 0;
  uint64_t log_base_ = 0;
  uint64_t log_head_ = 0;
  uint64_t entries_ = 0;
  uint64_t puts_since_sync_ = 0;
  // Set once Format()/Recover() succeeds. A failed Open must not Persist()
  // from the destructor: that would overwrite the (possibly corrupt but
  // diagnosable) superblock with default-constructed state.
  bool opened_ = false;
};

}  // namespace aquila

#endif  // AQUILA_SRC_KVS_KREON_DB_H_
