// Bloom filter for SST files (RocksDB-style, ~10 bits/key by default).
#ifndef AQUILA_SRC_KVS_BLOOM_H_
#define AQUILA_SRC_KVS_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kvs/slice.h"

namespace aquila {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key = 10);

  void AddKey(const Slice& key);

  // Serializes the filter: bit array + one trailing byte of probe count.
  std::string Finish();

  size_t num_keys() const { return hashes_.size(); }

 private:
  int bits_per_key_;
  std::vector<uint32_t> hashes_;
};

class BloomFilter {
 public:
  // `data` must outlive the filter (points into the SST's filter block).
  explicit BloomFilter(Slice data) : data_(data) {}

  bool MayContain(const Slice& key) const;

 private:
  Slice data_;
};

// Hash shared by builder and reader.
uint32_t BloomHash(const Slice& key);

}  // namespace aquila

#endif  // AQUILA_SRC_KVS_BLOOM_H_
