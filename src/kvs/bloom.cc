#include "src/kvs/bloom.h"

#include <algorithm>

namespace aquila {

uint32_t BloomHash(const Slice& key) {
  // Murmur-inspired 32-bit hash (leveldb's BloomHash equivalent).
  const uint32_t seed = 0xbc9f1d34;
  const uint32_t m = 0xc6a4a793;
  const char* data = key.data();
  size_t n = key.size();
  uint32_t h = seed ^ static_cast<uint32_t>(n * m);
  while (n >= 4) {
    uint32_t w;
    std::memcpy(&w, data, 4);
    h += w;
    h *= m;
    h ^= h >> 16;
    data += 4;
    n -= 4;
  }
  switch (n) {
    case 3:
      h += static_cast<unsigned char>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<unsigned char>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<unsigned char>(data[0]);
      h *= m;
      h ^= h >> 24;
  }
  return h;
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key) : bits_per_key_(bits_per_key) {}

void BloomFilterBuilder::AddKey(const Slice& key) { hashes_.push_back(BloomHash(key)); }

std::string BloomFilterBuilder::Finish() {
  // k = bits_per_key * ln(2), clamped like leveldb.
  int k = static_cast<int>(bits_per_key_ * 0.69);
  k = std::clamp(k, 1, 30);

  size_t bits = std::max<size_t>(hashes_.size() * bits_per_key_, 64);
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string result(bytes, '\0');
  for (uint32_t h : hashes_) {
    uint32_t delta = (h >> 17) | (h << 15);  // double hashing
    for (int j = 0; j < k; j++) {
      uint32_t bit = h % bits;
      result[bit / 8] |= static_cast<char>(1 << (bit % 8));
      h += delta;
    }
  }
  result.push_back(static_cast<char>(k));
  return result;
}

bool BloomFilter::MayContain(const Slice& key) const {
  if (data_.size() < 2) {
    return true;  // malformed/empty filter: be conservative
  }
  size_t bits = (data_.size() - 1) * 8;
  int k = data_[data_.size() - 1];
  if (k > 30 || k < 1) {
    return true;
  }
  uint32_t h = BloomHash(key);
  uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    uint32_t bit = h % bits;
    if ((data_[bit / 8] & (1 << (bit % 8))) == 0) {
      return false;
    }
    h += delta;
  }
  return true;
}

}  // namespace aquila
