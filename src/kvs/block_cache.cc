#include "src/kvs/block_cache.h"

#include "src/util/bitops.h"
#include "src/util/logging.h"

namespace aquila {

BlockCache::BlockCache(const Options& options)
    : options_(options),
      per_shard_capacity_(options.capacity_bytes / options.shards),
      shards_(options.shards) {
  AQUILA_CHECK(options.shards > 0);

  metrics_.AddCounter("aquila.kvs.block_cache_hits", stats_.hits);
  metrics_.AddCounter("aquila.kvs.block_cache_misses", stats_.misses);
  metrics_.AddCounter("aquila.kvs.block_cache_inserts", stats_.inserts);
  metrics_.AddCounter("aquila.kvs.block_cache_evictions", stats_.evictions);
  metrics_.AddGauge("aquila.kvs.block_cache_bytes", [this] { return UsedBytes(); });
}

BlockCache::Shard& BlockCache::ShardFor(uint64_t key) {
  return shards_[Mix64(key) % shards_.size()];
}

std::shared_ptr<const std::string> BlockCache::Lookup(uint64_t file_id, uint64_t offset) {
  SimClock& clock = ThisThreadClock();
  clock.Charge(CostCategory::kCacheMgmt, options_.lookup_surcharge);
  ScopedMeasure measure(clock, CostCategory::kCacheMgmt);

  uint64_t key = MakeKey(file_id, offset);
  Shard& shard = ShardFor(key);
  std::lock_guard<SpinLock> guard(shard.lock);
  auto it = shard.table.find(key);
  if (it == shard.table.end()) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // LRU update on every hit: the management cost mmio avoids.
  shard.lru.erase(it->second.lru_pos);
  shard.lru.push_back(key);
  it->second.lru_pos = std::prev(shard.lru.end());
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second.block;
}

void BlockCache::Insert(uint64_t file_id, uint64_t offset,
                        std::shared_ptr<const std::string> block) {
  SimClock& clock = ThisThreadClock();
  clock.Charge(CostCategory::kCacheMgmt, options_.insert_surcharge);
  ScopedMeasure measure(clock, CostCategory::kCacheMgmt);

  uint64_t key = MakeKey(file_id, offset);
  uint64_t bytes = block->size() + 64;  // entry overhead
  Shard& shard = ShardFor(key);
  std::lock_guard<SpinLock> guard(shard.lock);
  auto it = shard.table.find(key);
  if (it != shard.table.end()) {
    shard.used_bytes -= it->second.block->size() + 64;
    shard.lru.erase(it->second.lru_pos);
    shard.table.erase(it);
  }
  while (shard.used_bytes + bytes > per_shard_capacity_ && !shard.lru.empty()) {
    uint64_t victim = shard.lru.front();
    shard.lru.pop_front();
    auto vit = shard.table.find(victim);
    AQUILA_DCHECK(vit != shard.table.end());
    shard.used_bytes -= vit->second.block->size() + 64;
    shard.table.erase(vit);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_back(key);
  Entry entry{key, std::move(block), std::prev(shard.lru.end())};
  shard.table.emplace(key, std::move(entry));
  shard.used_bytes += bytes;
  stats_.inserts.fetch_add(1, std::memory_order_relaxed);
}

void BlockCache::Erase(uint64_t file_id, uint64_t offset) {
  uint64_t key = MakeKey(file_id, offset);
  Shard& shard = ShardFor(key);
  std::lock_guard<SpinLock> guard(shard.lock);
  auto it = shard.table.find(key);
  if (it != shard.table.end()) {
    shard.used_bytes -= it->second.block->size() + 64;
    shard.lru.erase(it->second.lru_pos);
    shard.table.erase(it);
  }
}

uint64_t BlockCache::UsedBytes() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<SpinLock> guard(const_cast<SpinLock&>(shard.lock));
    total += shard.used_bytes;
  }
  return total;
}

}  // namespace aquila
