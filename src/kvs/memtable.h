// Skiplist memtable (leveldb/RocksDB design): lock-free readers, writers
// serialized by the DB's write mutex. Entries are internal keys: user key
// ascending, sequence number descending, so a Get finds the newest visible
// version first and deletions shadow older puts.
#ifndef AQUILA_SRC_KVS_MEMTABLE_H_
#define AQUILA_SRC_KVS_MEMTABLE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/kvs/arena.h"
#include "src/kvs/slice.h"
#include "src/util/rng.h"

namespace aquila {

enum class ValueType : uint8_t {
  kDeletion = 0,
  kValue = 1,
};

class MemTable {
 public:
  MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Writers must be externally serialized; readers need no synchronization.
  void Add(uint64_t sequence, ValueType type, const Slice& key, const Slice& value);

  // Returns true if the key has an entry: *found_value filled for kValue,
  // *deleted set for kDeletion.
  bool Get(const Slice& key, std::string* found_value, bool* deleted) const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  uint64_t entries() const { return entries_.load(std::memory_order_relaxed); }

  // In-order iteration (flush to SST). Visits entries as (key, seq, type,
  // value), newest first within a key.
  class Iterator {
   public:
    explicit Iterator(const MemTable* table);
    bool Valid() const;
    void SeekToFirst();
    void Seek(const Slice& key);
    void Next();
    Slice key() const;
    uint64_t sequence() const;
    ValueType type() const;
    Slice value() const;

   private:
    const MemTable* table_;
    const void* node_;
  };

 private:
  friend class Iterator;
  struct Node;
  static constexpr int kMaxHeight = 12;

  // Internal-key comparison: user key asc, then sequence desc.
  int CompareEntries(const char* a, const char* b) const;
  int CompareEntryToKey(const char* entry, const Slice& key, uint64_t sequence) const;

  Node* NewNode(size_t entry_bytes, int height, char** entry_out);
  int RandomHeight();
  Node* FindGreaterOrEqual(const Slice& key, uint64_t sequence, Node** prev) const;

  Arena arena_;
  Node* head_;
  std::atomic<int> max_height_{1};
  std::atomic<uint64_t> entries_{0};
  Rng rng_{0xdecafbad};
};

}  // namespace aquila

#endif  // AQUILA_SRC_KVS_MEMTABLE_H_
