// Bump-pointer arena for memtable nodes (leveldb-style).
#ifndef AQUILA_SRC_KVS_ARENA_H_
#define AQUILA_SRC_KVS_ARENA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace aquila {

class Arena {
 public:
  static constexpr size_t kBlockSize = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes) {
    if (bytes <= remaining_) {
      char* result = ptr_;
      ptr_ += bytes;
      remaining_ -= bytes;
      return result;
    }
    return AllocateFallback(bytes);
  }

  char* AllocateAligned(size_t bytes) {
    constexpr size_t kAlign = 8;
    size_t mod = reinterpret_cast<uintptr_t>(ptr_) & (kAlign - 1);
    size_t slop = mod == 0 ? 0 : kAlign - mod;
    if (bytes + slop <= remaining_) {
      char* result = ptr_ + slop;
      ptr_ += bytes + slop;
      remaining_ -= bytes + slop;
      return result;
    }
    return AllocateFallback(bytes);  // fresh blocks are aligned
  }

  size_t MemoryUsage() const { return memory_usage_.load(std::memory_order_relaxed); }

 private:
  char* AllocateFallback(size_t bytes) {
    if (bytes > kBlockSize / 4) {
      // Large allocation gets its own block; current block keeps its space.
      return NewBlock(bytes);
    }
    ptr_ = NewBlock(kBlockSize);
    remaining_ = kBlockSize;
    char* result = ptr_;
    ptr_ += bytes;
    remaining_ -= bytes;
    return result;
  }

  char* NewBlock(size_t bytes) {
    blocks_.push_back(std::make_unique<char[]>(bytes));
    memory_usage_.fetch_add(bytes + sizeof(char*), std::memory_order_relaxed);
    return blocks_.back().get();
  }

  char* ptr_ = nullptr;
  size_t remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

}  // namespace aquila

#endif  // AQUILA_SRC_KVS_ARENA_H_
