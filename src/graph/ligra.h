// Ligra's programming model: vertex subsets + direction-optimizing edgeMap
// (Shun & Blelloch [57]).
//
// EdgeMap picks between a sparse push traversal (iterate frontier out-edges)
// and a dense pull traversal (scan undiscovered vertices' in-edges) based on
// the frontier's edge count — Ligra's signature optimization, kept because
// the paper's Fig 6 BFS inherits its access pattern from it. Parallelism is
// a thread pool over frontier/vertex partitions; the functor's UpdateAtomic
// must be safe for concurrent claims (BFS uses a CAS on a visited bitmap).
#ifndef AQUILA_SRC_GRAPH_LIGRA_H_
#define AQUILA_SRC_GRAPH_LIGRA_H_

#include <functional>
#include <thread>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/sim_clock.h"

namespace aquila {

class VertexSubset {
 public:
  VertexSubset() = default;
  explicit VertexSubset(uint64_t single) : vertices_{single} {}
  explicit VertexSubset(std::vector<uint64_t> vertices) : vertices_(std::move(vertices)) {}

  bool empty() const { return vertices_.empty(); }
  uint64_t size() const { return vertices_.size(); }
  const std::vector<uint64_t>& vertices() const { return vertices_; }

 private:
  std::vector<uint64_t> vertices_;
};

struct LigraOptions {
  int threads = 1;
  // Application compute charged per edge scanned (simulated cycles). Gives
  // the traversal a CPU cost independent of the memory backend, so DRAM vs
  // mmio runs compare like the paper's Fig 6 (calibrate with
  // bench_fig6_ligra's --calibrate output if desired).
  uint64_t user_cycles_per_edge = 45;
  // Dense traversal when frontier out-degree sum exceeds edges/divisor.
  uint64_t dense_divisor = 20;
  // Per-thread init hook (mmio engines need EnterThread).
  std::function<void()> thread_init;
};

namespace ligra_internal {

template <typename Body>
void ParallelFor(uint64_t begin, uint64_t end, const LigraOptions& options, Body body) {
  int threads = options.threads;
  if (threads <= 1 || end - begin < 2) {
    if (options.thread_init) {
      options.thread_init();
    }
    body(0, begin, end);
    return;
  }
  // Fork/join in simulated time: workers start at the coordinator's clock
  // and the coordinator resumes at the slowest worker's end.
  uint64_t origin = ThisThreadClock().Now();
  std::vector<uint64_t> ends(threads, origin);
  uint64_t chunk = (end - begin + threads - 1) / threads;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; t++) {
    uint64_t lo = begin + static_cast<uint64_t>(t) * chunk;
    uint64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) {
      break;
    }
    pool.emplace_back([&, t, lo, hi] {
      if (options.thread_init) {
        options.thread_init();
      }
      ThisThreadClock().JumpTo(origin);
      body(t, lo, hi);
      ends[t] = ThisThreadClock().Now();
    });
  }
  for (auto& t : pool) {
    t.join();
  }
  uint64_t slowest = origin;
  for (uint64_t e : ends) {
    slowest = std::max(slowest, e);
  }
  ThisThreadClock().JumpTo(slowest);
}

}  // namespace ligra_internal

// F requirements:
//   bool UpdateAtomic(uint64_t src, uint64_t dst)  -- true iff dst newly claimed
//   bool Cond(uint64_t dst)                        -- explore dst at all?
template <typename F>
VertexSubset EdgeMapSparse(const Graph& graph, const VertexSubset& frontier, F& f,
                           const LigraOptions& options) {
  int threads = std::max(1, options.threads);
  std::vector<std::vector<uint64_t>> local(threads);
  ligra_internal::ParallelFor(
      0, frontier.size(), options, [&](int tid, uint64_t lo, uint64_t hi) {
        std::vector<uint64_t>& out = local[tid];
        uint64_t scanned = 0;
        for (uint64_t i = lo; i < hi; i++) {
          uint64_t src = frontier.vertices()[i];
          uint64_t begin = graph.EdgeBegin(src);
          uint64_t degree = graph.Degree(src);
          scanned += degree;
          for (uint64_t e = 0; e < degree; e++) {
            uint64_t dst = graph.EdgeTarget(begin + e);
            if (f.Cond(dst) && f.UpdateAtomic(src, dst)) {
              out.push_back(dst);
            }
          }
        }
        ThisThreadClock().Charge(CostCategory::kUserWork,
                                 scanned * options.user_cycles_per_edge);
      });
  std::vector<uint64_t> merged;
  for (auto& chunk : local) {
    merged.insert(merged.end(), chunk.begin(), chunk.end());
  }
  return VertexSubset(std::move(merged));
}

template <typename F>
VertexSubset EdgeMapDense(const Graph& graph, const std::vector<uint8_t>& in_frontier, F& f,
                          const LigraOptions& options) {
  int threads = std::max(1, options.threads);
  std::vector<std::vector<uint64_t>> local(threads);
  ligra_internal::ParallelFor(
      0, graph.num_vertices(), options, [&](int tid, uint64_t lo, uint64_t hi) {
        std::vector<uint64_t>& out = local[tid];
        uint64_t scanned = 0;
        for (uint64_t v = lo; v < hi; v++) {
          if (!f.Cond(v)) {
            continue;
          }
          uint64_t begin = graph.EdgeBegin(v);
          uint64_t degree = graph.Degree(v);
          for (uint64_t e = 0; e < degree; e++) {
            scanned++;
            uint64_t u = graph.EdgeTarget(begin + e);
            if (in_frontier[u] && f.UpdateAtomic(u, v)) {
              out.push_back(v);
              break;  // claimed; stop scanning in-neighbors
            }
          }
        }
        ThisThreadClock().Charge(CostCategory::kUserWork,
                                 scanned * options.user_cycles_per_edge);
      });
  std::vector<uint64_t> merged;
  for (auto& chunk : local) {
    merged.insert(merged.end(), chunk.begin(), chunk.end());
  }
  return VertexSubset(std::move(merged));
}

template <typename F>
VertexSubset EdgeMap(const Graph& graph, const VertexSubset& frontier, F& f,
                     const LigraOptions& options) {
  // Direction optimization: sum of frontier degrees against the threshold
  // (DRAM degree summary; no mmio traffic for scheduling).
  uint64_t frontier_edges = 0;
  for (uint64_t v : frontier.vertices()) {
    frontier_edges += graph.DegreeCached(v);
  }
  if (frontier_edges + frontier.size() >
      graph.num_edges() / std::max<uint64_t>(1, options.dense_divisor)) {
    std::vector<uint8_t> dense(graph.num_vertices(), 0);
    for (uint64_t v : frontier.vertices()) {
      dense[v] = 1;
    }
    return EdgeMapDense(graph, dense, f, options);
  }
  return EdgeMapSparse(graph, frontier, f, options);
}

// Applies `body` to every vertex of the subset (in parallel).
template <typename Body>
void VertexMap(const VertexSubset& subset, const LigraOptions& options, Body body) {
  ligra_internal::ParallelFor(0, subset.size(), options,
                              [&](int tid, uint64_t lo, uint64_t hi) {
                                for (uint64_t i = lo; i < hi; i++) {
                                  body(subset.vertices()[i]);
                                }
                              });
}

}  // namespace aquila

#endif  // AQUILA_SRC_GRAPH_LIGRA_H_
