#include "src/graph/bfs.h"

#include <atomic>
#include <memory>

namespace aquila {

namespace {

struct BfsFunctor {
  // guarded-by: immutable after construction; per-slot writes serialized by
  // winning the visited[dst] CAS (exactly one writer per vertex).
  WordArray* parents;
  std::atomic<uint8_t>* visited;

  bool UpdateAtomic(uint64_t src, uint64_t dst) {
    uint8_t expected = 0;
    if (visited[dst].compare_exchange_strong(expected, 1, std::memory_order_acq_rel)) {
      parents->Set(dst, src);
      return true;
    }
    return false;
  }

  bool Cond(uint64_t dst) const { return visited[dst].load(std::memory_order_relaxed) == 0; }
};

}  // namespace

BfsResult Bfs(const Graph& graph, uint64_t source, WordArray* parents,
              const LigraOptions& options) {
  AQUILA_CHECK(parents->size() >= graph.num_vertices());
  uint64_t n = graph.num_vertices();
  for (uint64_t v = 0; v < n; v++) {
    parents->Set(v, ~0ull);
  }
  auto visited = std::make_unique<std::atomic<uint8_t>[]>(n);

  BfsFunctor f{parents, visited.get()};
  visited[source].store(1, std::memory_order_relaxed);
  parents->Set(source, source);

  BfsResult result;
  result.reached = 1;
  VertexSubset frontier(source);
  while (!frontier.empty()) {
    frontier = EdgeMap(graph, frontier, f, options);
    if (!frontier.empty()) {
      result.rounds++;  // rounds = BFS levels beyond the source
    }
    result.reached += frontier.size();
  }
  return result;
}

}  // namespace aquila
