#include "src/graph/rmat.h"

#include "src/util/bitops.h"
#include "src/util/rng.h"

namespace aquila {

std::vector<std::pair<uint64_t, uint64_t>> GenerateRmat(uint64_t num_vertices,
                                                        uint64_t num_edges,
                                                        const RmatOptions& options) {
  uint64_t n = NextPowerOfTwo(num_vertices);
  int levels = 0;
  while ((1ull << levels) < n) {
    levels++;
  }
  Rng rng(options.seed);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    uint64_t src = 0, dst = 0;
    for (int level = 0; level < levels; level++) {
      double p = rng.NextDouble();
      src <<= 1;
      dst <<= 1;
      if (p < options.a) {
        // top-left quadrant: no bits set
      } else if (p < options.a + options.b) {
        dst |= 1;
      } else if (p < options.a + options.b + options.c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (src >= num_vertices || dst >= num_vertices || src == dst) {
      continue;
    }
    edges.emplace_back(src, dst);
  }
  return edges;
}

}  // namespace aquila
