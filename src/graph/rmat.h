// R-MAT graph generator (Chakrabarti et al. [10]), matching the paper's
// Fig 6 input: 100M vertices, directed edges = 10x vertices, run through
// Ligra's symmetrizing build. Scaled down by the benchmarks.
#ifndef AQUILA_SRC_GRAPH_RMAT_H_
#define AQUILA_SRC_GRAPH_RMAT_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace aquila {

struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  uint64_t seed = 2021;
};

// Generates `num_edges` directed edges over [0, num_vertices).
// num_vertices is rounded up to a power of two internally; out-of-range
// endpoints are re-drawn.
std::vector<std::pair<uint64_t, uint64_t>> GenerateRmat(uint64_t num_vertices,
                                                        uint64_t num_edges,
                                                        const RmatOptions& options = {});

}  // namespace aquila

#endif  // AQUILA_SRC_GRAPH_RMAT_H_
