#include "src/graph/graph.h"

#include <algorithm>

namespace aquila {

Graph BuildGraph(uint64_t num_vertices, std::vector<std::pair<uint64_t, uint64_t>> edges,
                 MmioHeap* heap) {
  // Symmetrize and dedup.
  size_t original = edges.size();
  edges.reserve(original * 2);
  for (size_t i = 0; i < original; i++) {
    edges.emplace_back(edges[i].second, edges[i].first);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const auto& e) { return e.first == e.second; }),
              edges.end());

  uint64_t m = edges.size();
  std::unique_ptr<WordArray> offsets;
  std::unique_ptr<WordArray> edge_array;
  if (heap != nullptr) {
    offsets = heap->AllocArray(num_vertices + 1);
    edge_array = heap->AllocArray(m);
  } else {
    offsets = std::make_unique<DramWordArray>(num_vertices + 1);
    edge_array = std::make_unique<DramWordArray>(m);
  }

  uint64_t edge_index = 0;
  for (uint64_t v = 0; v < num_vertices; v++) {
    offsets->Set(v, edge_index);
    while (edge_index < m && edges[edge_index].first == v) {
      edge_array->Set(edge_index, edges[edge_index].second);
      edge_index++;
    }
  }
  offsets->Set(num_vertices, m);

  return Graph(std::move(offsets), std::move(edge_array), num_vertices, m);
}

}  // namespace aquila
