// Ligra-style graph processing substrate (§5, [57]).
//
// The paper extends Ligra's heap over fast storage by converting its
// malloc/free to allocations on a memory-mapped file. We reproduce that
// architecture: graph arrays (CSR offsets + edges) and algorithm state
// (parent array) live in a `WordArray`, which is either plain DRAM (the
// in-memory reference of Fig 6) or an MmioHeap allocation on a device
// mapping (mmap / Aquila). Every random edge lookup then exercises the
// mmio path exactly as the ported Ligra does.
#ifndef AQUILA_SRC_GRAPH_GRAPH_H_
#define AQUILA_SRC_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/mmio.h"
#include "src/util/logging.h"

namespace aquila {

// A fixed-size array of 64-bit words, either in DRAM or on an mmio mapping.
class WordArray {
 public:
  virtual ~WordArray() = default;
  virtual uint64_t Get(uint64_t index) const = 0;
  virtual void Set(uint64_t index, uint64_t value) = 0;
  virtual uint64_t size() const = 0;
};

class DramWordArray : public WordArray {
 public:
  explicit DramWordArray(uint64_t n, uint64_t fill = 0) : words_(n, fill) {}

  uint64_t Get(uint64_t index) const override { return words_[index]; }
  void Set(uint64_t index, uint64_t value) override { words_[index] = value; }
  uint64_t size() const override { return words_.size(); }

 private:
  std::vector<uint64_t> words_;
};

class MmioWordArray : public WordArray {
 public:
  MmioWordArray(MemoryMap* map, uint64_t byte_offset, uint64_t n)
      : map_(map), base_(byte_offset), n_(n) {}

  uint64_t Get(uint64_t index) const override {
    AQUILA_DCHECK(index < n_);
    return map_->LoadValue<uint64_t>(base_ + index * 8);
  }
  void Set(uint64_t index, uint64_t value) override {
    AQUILA_DCHECK(index < n_);
    map_->StoreValue<uint64_t>(base_ + index * 8, value);
  }
  uint64_t size() const override { return n_; }

 private:
  MemoryMap* map_;
  uint64_t base_;
  uint64_t n_;
};

// Bump allocator over a memory mapping: the "extended heap" (§6.2). The
// mapping is the address space; Alloc hands out 8-byte-aligned offsets.
class MmioHeap {
 public:
  explicit MmioHeap(MemoryMap* map) : map_(map) {}

  // Returns the byte offset of a fresh range; aborts when the mapping is
  // exhausted (the device bounds the heap, as in the paper).
  uint64_t Alloc(uint64_t bytes) {
    uint64_t offset = next_;
    AQUILA_CHECK(offset + bytes <= map_->length());
    next_ += (bytes + 7) & ~7ull;
    return offset;
  }

  std::unique_ptr<WordArray> AllocArray(uint64_t words) {
    return std::make_unique<MmioWordArray>(map_, Alloc(words * 8), words);
  }

  MemoryMap* map() { return map_; }
  uint64_t used_bytes() const { return next_; }

 private:
  MemoryMap* map_;
  uint64_t next_ = 0;
};

// Compressed-sparse-row graph. Arrays may live in DRAM or on an mmio heap.
class Graph {
 public:
  Graph(std::unique_ptr<WordArray> offsets, std::unique_ptr<WordArray> edges,
        uint64_t num_vertices, uint64_t num_edges)
      : offsets_(std::move(offsets)),
        edges_(std::move(edges)),
        num_vertices_(num_vertices),
        num_edges_(num_edges) {
    AQUILA_CHECK(offsets_->size() == num_vertices_ + 1);
    AQUILA_CHECK(edges_->size() == num_edges_);
    // Degree summary kept in DRAM, as Ligra's vertex objects do: the
    // direction-optimization threshold must not re-walk the offsets array
    // through mmio every round.
    degrees_.resize(num_vertices_);
    uint64_t prev = offsets_->Get(0);
    for (uint64_t v = 0; v < num_vertices_; v++) {
      uint64_t next = offsets_->Get(v + 1);
      degrees_[v] = static_cast<uint32_t>(next - prev);
      prev = next;
    }
  }

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }

  uint64_t Degree(uint64_t v) const { return offsets_->Get(v + 1) - offsets_->Get(v); }
  // DRAM-resident degree (no mmio traffic); used for scheduling decisions.
  uint64_t DegreeCached(uint64_t v) const { return degrees_[v]; }
  uint64_t EdgeBegin(uint64_t v) const { return offsets_->Get(v); }
  uint64_t EdgeTarget(uint64_t e) const { return edges_->Get(e); }

 private:
  std::unique_ptr<WordArray> offsets_;
  std::unique_ptr<WordArray> edges_;
  uint64_t num_vertices_;
  uint64_t num_edges_;
  std::vector<uint32_t> degrees_;
};

// Builds a CSR graph from an edge list, symmetrizing (Ligra's BFS inputs
// are symmetric). Arrays are allocated from `heap` when non-null, else DRAM.
Graph BuildGraph(uint64_t num_vertices, std::vector<std::pair<uint64_t, uint64_t>> edges,
                 MmioHeap* heap);

}  // namespace aquila

#endif  // AQUILA_SRC_GRAPH_GRAPH_H_
