#include "src/graph/pagerank.h"

#include <atomic>
#include <cmath>
#include <memory>
#include <set>

namespace aquila {

namespace {

constexpr double kFixedScale = 4294967296.0;  // 2^32

uint64_t EncodeRank(double value) { return static_cast<uint64_t>(value * kFixedScale); }

}  // namespace

double DecodeRank(uint64_t fixed) { return static_cast<double>(fixed) / kFixedScale; }

PageRankResult PageRank(const Graph& graph, WordArray* ranks, const LigraOptions& ligra,
                        const PageRankOptions& options) {
  uint64_t n = graph.num_vertices();
  AQUILA_CHECK(ranks->size() >= n);
  for (uint64_t v = 0; v < n; v++) {
    ranks->Set(v, EncodeRank(1.0 / static_cast<double>(n)));
  }

  // Per-iteration sums accumulate in DRAM atomics (Ligra uses fetch-and-add
  // into a dense array); the rank vector itself lives wherever the caller
  // allocated it (DRAM or mmio heap).
  auto sums = std::make_unique<std::atomic<uint64_t>[]>(n);
  std::vector<uint64_t> all(n);
  for (uint64_t v = 0; v < n; v++) {
    all[v] = v;
  }
  VertexSubset everything(std::move(all));

  PageRankResult result;
  for (int iter = 0; iter < options.max_iterations; iter++) {
    for (uint64_t v = 0; v < n; v++) {
      sums[v].store(0, std::memory_order_relaxed);
    }
    // Push this round's contributions along every out-edge.
    VertexMap(everything, ligra, [&](uint64_t v) {
      uint64_t degree = graph.Degree(v);
      if (degree == 0) {
        return;
      }
      uint64_t share = ranks->Get(v) / degree;
      uint64_t begin = graph.EdgeBegin(v);
      for (uint64_t e = 0; e < degree; e++) {
        sums[graph.EdgeTarget(begin + e)].fetch_add(share, std::memory_order_relaxed);
      }
      ThisThreadClock().Charge(CostCategory::kUserWork,
                               degree * ligra.user_cycles_per_edge);
    });
    // Apply damping and measure the delta.
    std::atomic<uint64_t> delta_fixed{0};
    uint64_t base = EncodeRank((1.0 - options.damping) / static_cast<double>(n));
    VertexMap(everything, ligra, [&](uint64_t v) {
      uint64_t next = base + static_cast<uint64_t>(
                                 options.damping *
                                 static_cast<double>(sums[v].load(std::memory_order_relaxed)));
      uint64_t prev = ranks->Get(v);
      uint64_t diff = next > prev ? next - prev : prev - next;
      delta_fixed.fetch_add(diff, std::memory_order_relaxed);
      ranks->Set(v, next);
    });
    result.iterations = iter + 1;
    result.l1_delta = DecodeRank(delta_fixed.load());
    if (result.l1_delta < options.tolerance) {
      break;
    }
  }
  return result;
}

uint64_t ConnectedComponents(const Graph& graph, WordArray* labels,
                             const LigraOptions& ligra) {
  uint64_t n = graph.num_vertices();
  AQUILA_CHECK(labels->size() >= n);
  for (uint64_t v = 0; v < n; v++) {
    labels->Set(v, v);
  }

  // Label propagation: iterate until no label shrinks. The "changed" flags
  // are DRAM atomics; labels live on the caller's array.
  auto changed = std::make_unique<std::atomic<uint8_t>[]>(n);
  std::vector<uint64_t> all(n);
  for (uint64_t v = 0; v < n; v++) {
    all[v] = v;
    changed[v].store(1, std::memory_order_relaxed);
  }
  VertexSubset everything(std::move(all));

  bool any_changed = true;
  while (any_changed) {
    std::atomic<bool> round_changed{false};
    VertexMap(everything, ligra, [&](uint64_t v) {
      if (changed[v].load(std::memory_order_relaxed) == 0) {
        return;
      }
      changed[v].store(0, std::memory_order_relaxed);
      uint64_t label = labels->Get(v);
      uint64_t degree = graph.Degree(v);
      uint64_t begin = graph.EdgeBegin(v);
      for (uint64_t e = 0; e < degree; e++) {
        uint64_t u = graph.EdgeTarget(begin + e);
        uint64_t other = labels->Get(u);
        if (other > label) {
          labels->Set(u, label);
          changed[u].store(1, std::memory_order_relaxed);
          round_changed.store(true, std::memory_order_relaxed);
        } else if (other < label) {
          label = other;
          labels->Set(v, label);
          changed[v].store(1, std::memory_order_relaxed);
          round_changed.store(true, std::memory_order_relaxed);
        }
      }
      ThisThreadClock().Charge(CostCategory::kUserWork,
                               degree * ligra.user_cycles_per_edge);
    });
    any_changed = round_changed.load();
  }

  std::set<uint64_t> distinct;
  for (uint64_t v = 0; v < n; v++) {
    distinct.insert(labels->Get(v));
  }
  return distinct.size();
}

}  // namespace aquila
