// PageRank and connected components over the Ligra abstractions — the other
// canonical Ligra workloads; both stream every edge per iteration, which is
// the heaviest mmio access pattern an extended heap sees (dense sweeps, no
// frontier sparsity to hide behind).
#ifndef AQUILA_SRC_GRAPH_PAGERANK_H_
#define AQUILA_SRC_GRAPH_PAGERANK_H_

#include "src/graph/graph.h"
#include "src/graph/ligra.h"

namespace aquila {

struct PageRankOptions {
  int max_iterations = 10;
  double damping = 0.85;
  // Stop when the L1 delta between iterations drops below this.
  double tolerance = 1e-7;
};

struct PageRankResult {
  int iterations = 0;
  double l1_delta = 0;  // final iteration's delta
};

// Ranks are stored as fixed-point (x 2^32) words in `ranks` so they can live
// on an mmio heap. `ranks` must have num_vertices entries.
PageRankResult PageRank(const Graph& graph, WordArray* ranks, const LigraOptions& ligra,
                        const PageRankOptions& options = {});

// Decodes a fixed-point rank produced by PageRank.
double DecodeRank(uint64_t fixed);

// Label-propagation connected components. `labels` gets the component id
// (smallest vertex id in the component). Returns the number of components.
uint64_t ConnectedComponents(const Graph& graph, WordArray* labels,
                             const LigraOptions& ligra);

}  // namespace aquila

#endif  // AQUILA_SRC_GRAPH_PAGERANK_H_
