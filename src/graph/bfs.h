// Breadth-first search over the Ligra abstractions (the Fig 6 workload).
#ifndef AQUILA_SRC_GRAPH_BFS_H_
#define AQUILA_SRC_GRAPH_BFS_H_

#include "src/graph/graph.h"
#include "src/graph/ligra.h"

namespace aquila {

struct BfsResult {
  uint64_t reached = 0;  // vertices discovered (source included)
  int rounds = 0;
};

// Runs BFS from `source`. `parents` must have num_vertices entries; on
// return parents[v] is v's BFS parent (source's parent is itself) or ~0 for
// unreached vertices. The parent array may live on an mmio heap — that is
// the paper's experiment — while the claim bitmap is DRAM-resident
// (Ligra's CAS on visited flags).
BfsResult Bfs(const Graph& graph, uint64_t source, WordArray* parents,
              const LigraOptions& options);

}  // namespace aquila

#endif  // AQUILA_SRC_GRAPH_BFS_H_
