// Path -> blob translation: the file abstraction Aquila layers over the
// blobstore by intercepting open()/mmap() in non-root ring 0 (§3.3).
//
// Names are stored durably as the "name" xattr of each blob, so a namespace
// can be rebuilt from a loaded blobstore. Open-or-create semantics mirror
// O_CREAT: key-value stores just open SST files by path and get blobs.
#ifndef AQUILA_SRC_BLOB_BLOB_NAMESPACE_H_
#define AQUILA_SRC_BLOB_BLOB_NAMESPACE_H_

#include <map>
#include <string>
#include <vector>

#include "src/blob/blobstore.h"

namespace aquila {

class BlobNamespace {
 public:
  explicit BlobNamespace(Blobstore* store);

  // Rebuilds the path table from blob xattrs (after Blobstore::Load).
  Status Recover();

  // Opens the blob named `path`, creating it (with `initial_bytes` rounded
  // up to clusters) when absent and `create` is set.
  StatusOr<BlobId> Open(const std::string& path, bool create, uint64_t initial_bytes = 0);

  StatusOr<BlobId> Lookup(const std::string& path) const;
  Status Unlink(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);
  std::vector<std::string> List() const;

  Blobstore* store() { return store_; }

 private:
  Blobstore* store_;
  mutable SpinLock lock_;
  std::map<std::string, BlobId> paths_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_BLOB_BLOB_NAMESPACE_H_
