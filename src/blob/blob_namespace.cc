#include "src/blob/blob_namespace.h"

#include "src/util/bitops.h"

namespace aquila {

BlobNamespace::BlobNamespace(Blobstore* store) : store_(store) {}

Status BlobNamespace::Recover() {
  std::lock_guard<SpinLock> guard(lock_);
  paths_.clear();
  for (BlobId id : store_->ListBlobs()) {
    StatusOr<std::string> name = store_->GetXattr(id, "name");
    if (name.ok()) {
      paths_[*name] = id;
    }
  }
  return Status::Ok();
}

StatusOr<BlobId> BlobNamespace::Open(const std::string& path, bool create,
                                     uint64_t initial_bytes) {
  {
    std::lock_guard<SpinLock> guard(lock_);
    auto it = paths_.find(path);
    if (it != paths_.end()) {
      return it->second;
    }
  }
  if (!create) {
    return Status::NotFound("no blob named " + path);
  }
  uint64_t clusters = AlignUp(initial_bytes, store_->options().cluster_size) /
                      store_->options().cluster_size;
  StatusOr<BlobId> id = store_->CreateBlob(clusters);
  if (!id.ok()) {
    return id.status();
  }
  AQUILA_RETURN_IF_ERROR(store_->SetXattr(*id, "name", path));
  std::lock_guard<SpinLock> guard(lock_);
  auto [it, inserted] = paths_.emplace(path, *id);
  if (!inserted) {
    // Lost a create race: release ours, return the winner.
    (void)store_->DeleteBlob(*id);
    return it->second;
  }
  return *id;
}

StatusOr<BlobId> BlobNamespace::Lookup(const std::string& path) const {
  std::lock_guard<SpinLock> guard(lock_);
  auto it = paths_.find(path);
  if (it == paths_.end()) {
    return Status::NotFound("no blob named " + path);
  }
  return it->second;
}

Status BlobNamespace::Unlink(const std::string& path) {
  BlobId id;
  {
    std::lock_guard<SpinLock> guard(lock_);
    auto it = paths_.find(path);
    if (it == paths_.end()) {
      return Status::NotFound("no blob named " + path);
    }
    id = it->second;
    paths_.erase(it);
  }
  return store_->DeleteBlob(id);
}

Status BlobNamespace::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<SpinLock> guard(lock_);
  auto it = paths_.find(from);
  if (it == paths_.end()) {
    return Status::NotFound("no blob named " + from);
  }
  BlobId id = it->second;
  AQUILA_RETURN_IF_ERROR(store_->SetXattr(id, "name", to));
  paths_.erase(it);
  // Rename-over semantics: the destination blob, if any, is replaced (the
  // old blob is deleted) — matching POSIX rename used by LSM compactions.
  auto existing = paths_.find(to);
  if (existing != paths_.end()) {
    (void)store_->DeleteBlob(existing->second);
    existing->second = id;
  } else {
    paths_[to] = id;
  }
  return Status::Ok();
}

std::vector<std::string> BlobNamespace::List() const {
  std::lock_guard<SpinLock> guard(lock_);
  std::vector<std::string> names;
  names.reserve(paths_.size());
  for (const auto& [path, id] : paths_) {
    names.push_back(path);
  }
  return names;
}

}  // namespace aquila
