#include "src/blob/blobstore.h"

#include <algorithm>
#include <cstring>

#include "src/util/bitops.h"
#include "src/util/crc32c.h"
#include "src/util/logging.h"

namespace aquila {
namespace {

constexpr uint64_t kMagic = 0x4151554232303231ull;  // "AQUB2021"
constexpr uint32_t kVersion = 2;

// Two superblock slots (pages 0 and 1) alternate by generation parity; the
// newest one whose CRC verifies wins at Load(). `payload_crc` covers the
// metadata payload in this generation's payload slot; `crc` covers the
// superblock itself (computed with the field zeroed). Must stay last.
struct Superblock {
  uint64_t magic;
  uint32_t version;
  uint32_t slot;
  uint64_t generation;
  uint64_t cluster_size;
  uint64_t metadata_bytes;
  uint64_t total_clusters;
  uint64_t next_id;
  uint64_t metadata_payload_bytes;
  uint32_t payload_crc;
  uint32_t crc;
};
static_assert(sizeof(Superblock) <= kPageSize);
static_assert(sizeof(Superblock) == 72);  // packed: CRC covers every byte

uint32_t SuperblockCrc(const Superblock& sb) {
  Superblock copy = sb;
  copy.crc = 0;
  return Crc32c(&copy, sizeof(copy));
}

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>& out) : out_(out) {}
  void U32(uint32_t v) { Append(&v, sizeof(v)); }
  void U64(uint64_t v) { Append(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Append(s.data(), s.size());
  }

 private:
  void Append(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }
  std::vector<uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}
  bool U32(uint32_t* v) { return Take(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Take(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t len;
    if (!U32(&len) || pos_ + len > data_.size()) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return true;
  }

 private:
  bool Take(void* out, size_t n) {
    if (pos_ + n > data_.size()) {
      return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace

void Blobstore::BlobRecord::RebuildPrefix() {
  extent_starts.clear();
  extent_starts.reserve(extents.size());
  uint64_t cum = 0;
  for (const Extent& e : extents) {
    extent_starts.push_back(cum);
    cum += e.cluster_count;
  }
}

Blobstore::Blobstore(BlockDevice* device, const Options& options)
    : device_(device), options_(options) {
  total_clusters_ = device_->capacity_bytes() / options_.cluster_size;
  payload_capacity_ = AlignUp(options_.metadata_bytes, kPageSize);
  // Two superblock pages + two payload slots, rounded up to clusters.
  metadata_clusters_ =
      AlignUp(2 * kPageSize + 2 * payload_capacity_, options_.cluster_size) /
      options_.cluster_size;
  if (metadata_clusters_ > total_clusters_) {
    metadata_clusters_ = total_clusters_;  // Format() rejects this geometry
  }
  cluster_bitmap_.assign(total_clusters_, false);
  for (uint64_t c = 0; c < metadata_clusters_; c++) {
    cluster_bitmap_[c] = true;
  }
  free_clusters_ = total_clusters_ - metadata_clusters_;
}

StatusOr<std::unique_ptr<Blobstore>> Blobstore::Format(Vcpu& vcpu, BlockDevice* device,
                                                       const Options& options) {
  if (!IsPowerOfTwo(options.cluster_size) || options.cluster_size < kPageSize) {
    return Status::InvalidArgument("cluster size must be a power of two >= 4K");
  }
  if (device->capacity_bytes() / options.cluster_size < 4) {
    return Status::InvalidArgument("device too small for blobstore");
  }
  auto store = std::unique_ptr<Blobstore>(new Blobstore(device, options));
  if (store->free_clusters_ == 0) {
    return Status::InvalidArgument("metadata region leaves no data clusters");
  }
  AQUILA_RETURN_IF_ERROR(store->Sync(vcpu));
  return store;
}

StatusOr<std::unique_ptr<Blobstore>> Blobstore::Load(Vcpu& vcpu, BlockDevice* device) {
  // Read both superblock slots and keep the candidates whose self-CRC
  // verifies, newest generation first.
  Superblock slots[2];
  bool valid[2] = {false, false};
  for (uint32_t s = 0; s < 2; s++) {
    std::vector<uint8_t> page(kPageSize);
    if (!device->Read(vcpu, s * kPageSize, std::span(page)).ok()) {
      continue;
    }
    std::memcpy(&slots[s], page.data(), sizeof(Superblock));
    valid[s] = slots[s].magic == kMagic && slots[s].version == kVersion &&
               slots[s].slot == s && SuperblockCrc(slots[s]) == slots[s].crc;
  }
  if (!valid[0] && !valid[1]) {
    return Status::FailedPrecondition("no blobstore on device");
  }

  // Try the newest valid generation; if its payload fails its checksum
  // (torn mid-Sync despite the flush barrier — e.g. a lying device), fall
  // back to the older one, whose payload slot that Sync never touched.
  uint32_t order[2];
  int candidates = 0;
  if (valid[0] && valid[1]) {
    order[0] = slots[0].generation >= slots[1].generation ? 0 : 1;
    order[1] = 1 - order[0];
    candidates = 2;
  } else {
    order[0] = valid[0] ? 0 : 1;
    candidates = 1;
  }

  Status last_error = Status::IoError("blobstore metadata unreadable");
  for (int i = 0; i < candidates; i++) {
    const Superblock& sb = slots[order[i]];
    Options options;
    options.cluster_size = sb.cluster_size;
    options.metadata_bytes = sb.metadata_bytes;
    auto store = std::unique_ptr<Blobstore>(new Blobstore(device, options));
    store->next_id_ = sb.next_id;
    store->generation_ = sb.generation;
    if (sb.metadata_payload_bytes != 0) {
      if (sb.metadata_payload_bytes > store->payload_capacity_) {
        last_error = Status::IoError("blobstore payload larger than its slot");
        continue;
      }
      std::vector<uint8_t> payload(AlignUp(sb.metadata_payload_bytes, kPageSize));
      uint64_t payload_off = 2 * kPageSize + sb.slot * store->payload_capacity_;
      Status status = device->Read(vcpu, payload_off, std::span(payload));
      if (!status.ok()) {
        last_error = status;
        continue;
      }
      if (Crc32c(payload.data(), sb.metadata_payload_bytes) != sb.payload_crc) {
        last_error = Status::IoError("blobstore metadata checksum mismatch");
        continue;
      }
      status = store->DeserializeMetadata(
          std::span(payload.data(), sb.metadata_payload_bytes));
      if (!status.ok()) {
        last_error = status;
        continue;
      }
    }
    return store;
  }
  return last_error;
}

std::vector<uint8_t> Blobstore::SerializeMetadata() const {
  std::vector<uint8_t> out;
  Writer w(out);
  w.U64(blobs_.size());
  for (const auto& [id, blob] : blobs_) {
    w.U64(id);
    w.U64(blob.cluster_count);
    w.U32(static_cast<uint32_t>(blob.extents.size()));
    for (const Extent& e : blob.extents) {
      w.U64(e.start_cluster);
      w.U64(e.cluster_count);
    }
    w.U32(static_cast<uint32_t>(blob.xattrs.size()));
    for (const auto& [name, value] : blob.xattrs) {
      w.Str(name);
      w.Str(value);
    }
  }
  return out;
}

Status Blobstore::DeserializeMetadata(std::span<const uint8_t> data) {
  Reader r(data);
  uint64_t blob_count;
  if (!r.U64(&blob_count)) {
    return Status::IoError("corrupt blobstore metadata");
  }
  for (uint64_t i = 0; i < blob_count; i++) {
    BlobRecord blob;
    uint32_t extent_count, xattr_count;
    if (!r.U64(&blob.id) || !r.U64(&blob.cluster_count) || !r.U32(&extent_count)) {
      return Status::IoError("corrupt blobstore metadata");
    }
    for (uint32_t e = 0; e < extent_count; e++) {
      Extent extent;
      if (!r.U64(&extent.start_cluster) || !r.U64(&extent.cluster_count)) {
        return Status::IoError("corrupt blobstore metadata");
      }
      if (extent.start_cluster + extent.cluster_count > total_clusters_) {
        return Status::IoError("blob extent beyond device");
      }
      for (uint64_t c = 0; c < extent.cluster_count; c++) {
        if (cluster_bitmap_[extent.start_cluster + c]) {
          return Status::IoError("blob extents overlap");
        }
        cluster_bitmap_[extent.start_cluster + c] = true;
      }
      free_clusters_ -= extent.cluster_count;
      blob.extents.push_back(extent);
    }
    blob.RebuildPrefix();
    if (!r.U32(&xattr_count)) {
      return Status::IoError("corrupt blobstore metadata");
    }
    for (uint32_t x = 0; x < xattr_count; x++) {
      std::string name, value;
      if (!r.Str(&name) || !r.Str(&value)) {
        return Status::IoError("corrupt blobstore metadata");
      }
      blob.xattrs[name] = value;
    }
    BlobId id = blob.id;
    blobs_[id] = std::move(blob);
  }
  return Status::Ok();
}

Status Blobstore::Sync(Vcpu& vcpu) {
  std::vector<uint8_t> payload;
  uint64_t next_id;
  {
    SharedLockGuard guard(lock_);
    payload = SerializeMetadata();
    next_id = next_id_;
  }
  if (payload.size() > payload_capacity_) {
    return Status::OutOfSpace("blobstore metadata region full");
  }
  uint64_t payload_bytes = payload.size();
  uint32_t payload_crc = Crc32c(payload.data(), payload_bytes);

  // Write the NEXT generation into the slot the current superblock does not
  // reference, so a crash at any point preserves the previous generation.
  uint64_t next_gen = generation_ + 1;
  uint32_t slot = static_cast<uint32_t>(next_gen % 2);
  if (!payload.empty()) {
    payload.resize(AlignUp(payload.size(), kPageSize), 0);
    AQUILA_RETURN_IF_ERROR(
        device_->Write(vcpu, 2 * kPageSize + slot * payload_capacity_,
                       std::span<const uint8_t>(payload)));
  }
  // Payload must be durable before the superblock that points at it.
  AQUILA_RETURN_IF_ERROR(device_->Flush(vcpu));

  Superblock sb{};
  sb.magic = kMagic;
  sb.version = kVersion;
  sb.slot = slot;
  sb.generation = next_gen;
  sb.cluster_size = options_.cluster_size;
  sb.metadata_bytes = options_.metadata_bytes;
  sb.total_clusters = total_clusters_;
  sb.next_id = next_id;
  sb.metadata_payload_bytes = payload_bytes;
  sb.payload_crc = payload_crc;
  sb.crc = SuperblockCrc(sb);
  std::vector<uint8_t> page(kPageSize, 0);
  std::memcpy(page.data(), &sb, sizeof(sb));
  AQUILA_RETURN_IF_ERROR(
      device_->Write(vcpu, slot * kPageSize, std::span<const uint8_t>(page)));
  AQUILA_RETURN_IF_ERROR(device_->Flush(vcpu));
  generation_ = next_gen;
  return Status::Ok();
}

StatusOr<std::vector<Blobstore::Extent>> Blobstore::AllocateClusters(uint64_t count) {
  // Caller holds lock_ exclusively.
  if (count > free_clusters_) {
    return Status::OutOfSpace("blobstore out of clusters");
  }
  std::vector<Extent> extents;
  uint64_t remaining = count;
  uint64_t c = metadata_clusters_;
  while (remaining > 0 && c < total_clusters_) {
    if (cluster_bitmap_[c]) {
      c++;
      continue;
    }
    uint64_t run_start = c;
    while (c < total_clusters_ && !cluster_bitmap_[c] && (c - run_start) < remaining) {
      cluster_bitmap_[c] = true;
      c++;
    }
    extents.push_back(Extent{run_start, c - run_start});
    remaining -= c - run_start;
  }
  AQUILA_CHECK(remaining == 0);
  free_clusters_ -= count;
  return extents;
}

void Blobstore::ReleaseExtents(const std::vector<Extent>& extents) {
  for (const Extent& e : extents) {
    for (uint64_t c = 0; c < e.cluster_count; c++) {
      AQUILA_DCHECK(cluster_bitmap_[e.start_cluster + c]);
      cluster_bitmap_[e.start_cluster + c] = false;
    }
    free_clusters_ += e.cluster_count;
  }
}

const Blobstore::BlobRecord* Blobstore::FindBlob(BlobId id) const {
  auto it = blobs_.find(id);
  return it == blobs_.end() ? nullptr : &it->second;
}

Blobstore::BlobRecord* Blobstore::FindBlob(BlobId id) {
  auto it = blobs_.find(id);
  return it == blobs_.end() ? nullptr : &it->second;
}

StatusOr<BlobId> Blobstore::CreateBlob(uint64_t initial_clusters) {
  ExclusiveLockGuard guard(lock_);
  BlobRecord blob;
  blob.id = next_id_++;
  if (initial_clusters > 0) {
    StatusOr<std::vector<Extent>> extents = AllocateClusters(initial_clusters);
    if (!extents.ok()) {
      return extents.status();
    }
    blob.extents = std::move(*extents);
    blob.cluster_count = initial_clusters;
    blob.RebuildPrefix();
  }
  BlobId id = blob.id;
  blobs_[id] = std::move(blob);
  return id;
}

Status Blobstore::DeleteBlob(BlobId id) {
  ExclusiveLockGuard guard(lock_);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return Status::NotFound("blob does not exist");
  }
  ReleaseExtents(it->second.extents);
  blobs_.erase(it);
  return Status::Ok();
}

Status Blobstore::GrowBlob(BlobRecord& blob, uint64_t add_clusters) {
  StatusOr<std::vector<Extent>> extents = AllocateClusters(add_clusters);
  if (!extents.ok()) {
    return extents.status();
  }
  for (Extent& e : *extents) {
    // Merge with the trailing extent when physically contiguous.
    if (!blob.extents.empty() &&
        blob.extents.back().start_cluster + blob.extents.back().cluster_count ==
            e.start_cluster) {
      blob.extents.back().cluster_count += e.cluster_count;
    } else {
      blob.extents.push_back(e);
    }
  }
  blob.cluster_count += add_clusters;
  blob.RebuildPrefix();
  return Status::Ok();
}

Status Blobstore::ShrinkBlob(BlobRecord& blob, uint64_t remove_clusters) {
  std::vector<Extent> released;
  uint64_t remaining = remove_clusters;
  while (remaining > 0) {
    AQUILA_CHECK(!blob.extents.empty());
    Extent& last = blob.extents.back();
    if (last.cluster_count <= remaining) {
      remaining -= last.cluster_count;
      released.push_back(last);
      blob.extents.pop_back();
    } else {
      last.cluster_count -= remaining;
      released.push_back(Extent{last.start_cluster + last.cluster_count, remaining});
      remaining = 0;
    }
  }
  ReleaseExtents(released);
  blob.cluster_count -= remove_clusters;
  blob.RebuildPrefix();
  return Status::Ok();
}

Status Blobstore::ResizeBlob(BlobId id, uint64_t clusters) {
  ExclusiveLockGuard guard(lock_);
  BlobRecord* blob = FindBlob(id);
  if (blob == nullptr) {
    return Status::NotFound("blob does not exist");
  }
  if (clusters > blob->cluster_count) {
    return GrowBlob(*blob, clusters - blob->cluster_count);
  }
  if (clusters < blob->cluster_count) {
    return ShrinkBlob(*blob, blob->cluster_count - clusters);
  }
  return Status::Ok();
}

StatusOr<uint64_t> Blobstore::BlobClusterCount(BlobId id) const {
  SharedLockGuard guard(lock_);
  const BlobRecord* blob = FindBlob(id);
  if (blob == nullptr) {
    return Status::NotFound("blob does not exist");
  }
  return blob->cluster_count;
}

uint64_t Blobstore::BlobSizeBytes(BlobId id) const {
  SharedLockGuard guard(lock_);
  const BlobRecord* blob = FindBlob(id);
  return blob == nullptr ? 0 : blob->cluster_count * options_.cluster_size;
}

std::vector<BlobId> Blobstore::ListBlobs() const {
  SharedLockGuard guard(lock_);
  std::vector<BlobId> ids;
  ids.reserve(blobs_.size());
  for (const auto& [id, blob] : blobs_) {
    ids.push_back(id);
  }
  return ids;
}

Status Blobstore::SetXattr(BlobId id, const std::string& name, const std::string& value) {
  ExclusiveLockGuard guard(lock_);
  BlobRecord* blob = FindBlob(id);
  if (blob == nullptr) {
    return Status::NotFound("blob does not exist");
  }
  blob->xattrs[name] = value;
  return Status::Ok();
}

StatusOr<std::string> Blobstore::GetXattr(BlobId id, const std::string& name) const {
  SharedLockGuard guard(lock_);
  const BlobRecord* blob = FindBlob(id);
  if (blob == nullptr) {
    return Status::NotFound("blob does not exist");
  }
  auto it = blob->xattrs.find(name);
  if (it == blob->xattrs.end()) {
    return Status::NotFound("xattr not set");
  }
  return it->second;
}

StatusOr<uint64_t> Blobstore::TranslateOffset(BlobId id, uint64_t offset) const {
  SharedLockGuard guard(lock_);
  const BlobRecord* blob = FindBlob(id);
  if (blob == nullptr) {
    return Status::NotFound("blob does not exist");
  }
  uint64_t cluster = offset / options_.cluster_size;
  if (cluster >= blob->cluster_count) {
    return Status::InvalidArgument("offset beyond blob size");
  }
  // Find the extent containing the logical cluster.
  auto it = std::upper_bound(blob->extent_starts.begin(), blob->extent_starts.end(), cluster);
  size_t idx = static_cast<size_t>(it - blob->extent_starts.begin()) - 1;
  const Extent& e = blob->extents[idx];
  uint64_t cluster_in_extent = cluster - blob->extent_starts[idx];
  uint64_t device_cluster = e.start_cluster + cluster_in_extent;
  return device_cluster * options_.cluster_size + offset % options_.cluster_size;
}

Status Blobstore::ReadBlob(Vcpu& vcpu, BlobId id, uint64_t offset, std::span<uint8_t> dst) {
  uint64_t done = 0;
  while (done < dst.size()) {
    StatusOr<uint64_t> dev_off = TranslateOffset(id, offset + done);
    if (!dev_off.ok()) {
      return dev_off.status();
    }
    uint64_t in_cluster = (offset + done) % options_.cluster_size;
    uint64_t run = std::min<uint64_t>(dst.size() - done, options_.cluster_size - in_cluster);
    AQUILA_RETURN_IF_ERROR(device_->Read(vcpu, *dev_off, dst.subspan(done, run)));
    done += run;
  }
  return Status::Ok();
}

Status Blobstore::WriteBlob(Vcpu& vcpu, BlobId id, uint64_t offset,
                            std::span<const uint8_t> src) {
  uint64_t done = 0;
  while (done < src.size()) {
    StatusOr<uint64_t> dev_off = TranslateOffset(id, offset + done);
    if (!dev_off.ok()) {
      return dev_off.status();
    }
    uint64_t in_cluster = (offset + done) % options_.cluster_size;
    uint64_t run = std::min<uint64_t>(src.size() - done, options_.cluster_size - in_cluster);
    AQUILA_RETURN_IF_ERROR(device_->Write(vcpu, *dev_off, src.subspan(done, run)));
    done += run;
  }
  return Status::Ok();
}

uint64_t Blobstore::free_clusters() const {
  SharedLockGuard guard(lock_);
  return free_clusters_;
}

}  // namespace aquila
