// Blobstore: a flat namespace of resizable blobs over a block device,
// modeled on SPDK's Blobstore (§3.3 "Direct access to NVMe").
//
// Aquila provides applications a file abstraction over SPDK by translating
// files to blobs: each blob is identified by a unique id, can be created,
// resized, and deleted at runtime, and supports extended attributes. This
// implementation is the direct-I/O flavor the paper uses (no internal
// buffering — Aquila's DRAM cache is the only cache; contrast BlobFS).
//
// On-device layout (cluster_size-aligned):
//   page 0, page 1          : superblock slots A/B (alternating generations)
//   2 pages ..              : metadata payload slots A/B
//   data clusters           : allocated to blobs as extents
// Metadata is kept in memory and serialized on Sync(); Load() replays it,
// so blobstores survive "remounts" of the same device.
//
// Crash consistency: Sync() writes the payload slot for the NEXT generation,
// flushes, then publishes the matching superblock (CRC32C over both) and
// flushes again. A crash anywhere in that sequence leaves the previous
// generation's superblock + payload intact, so Load() always recovers the
// newest generation whose checksums verify.
#ifndef AQUILA_SRC_BLOB_BLOBSTORE_H_
#define AQUILA_SRC_BLOB_BLOBSTORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/block_device.h"
#include "src/util/spinlock.h"
#include "src/util/status.h"

namespace aquila {

using BlobId = uint64_t;

class Blobstore {
 public:
  struct Options {
    uint64_t cluster_size = 64 * 1024;
    uint64_t metadata_bytes = 4ull << 20;
  };

  struct Extent {
    uint64_t start_cluster = 0;
    uint64_t cluster_count = 0;
  };

  // Formats `device` with an empty blobstore. The device's previous contents
  // are gone after Sync().
  static StatusOr<std::unique_ptr<Blobstore>> Format(Vcpu& vcpu, BlockDevice* device,
                                                     const Options& options);

  // Loads an existing blobstore from `device` (reads the superblock and
  // metadata region written by a previous Sync()).
  static StatusOr<std::unique_ptr<Blobstore>> Load(Vcpu& vcpu, BlockDevice* device);

  // --- Blob lifecycle ---------------------------------------------------------
  StatusOr<BlobId> CreateBlob(uint64_t initial_clusters = 0);
  Status DeleteBlob(BlobId id);
  Status ResizeBlob(BlobId id, uint64_t clusters);
  StatusOr<uint64_t> BlobClusterCount(BlobId id) const;
  uint64_t BlobSizeBytes(BlobId id) const;
  std::vector<BlobId> ListBlobs() const;

  // --- Extended attributes ------------------------------------------------------
  Status SetXattr(BlobId id, const std::string& name, const std::string& value);
  StatusOr<std::string> GetXattr(BlobId id, const std::string& name) const;

  // --- Data path (direct, unbuffered) ------------------------------------------
  Status ReadBlob(Vcpu& vcpu, BlobId id, uint64_t offset, std::span<uint8_t> dst);
  Status WriteBlob(Vcpu& vcpu, BlobId id, uint64_t offset, std::span<const uint8_t> src);

  // Translates a blob-relative byte offset to a device byte offset. The mmio
  // layer maps blob pages through this. Fails beyond the blob's size.
  StatusOr<uint64_t> TranslateOffset(BlobId id, uint64_t offset) const;

  // Persists the metadata region. Blob data goes straight to the device, so
  // only metadata needs syncing.
  Status Sync(Vcpu& vcpu);

  const Options& options() const { return options_; }
  BlockDevice* device() { return device_; }
  uint64_t free_clusters() const;
  uint64_t total_data_clusters() const { return total_clusters_ - metadata_clusters_; }

 private:
  struct BlobRecord {
    BlobId id = 0;
    uint64_t cluster_count = 0;
    std::vector<Extent> extents;           // in logical order
    std::vector<uint64_t> extent_starts;   // prefix sums of cluster counts
    std::map<std::string, std::string> xattrs;

    void RebuildPrefix();
  };

  Blobstore(BlockDevice* device, const Options& options);

  StatusOr<std::vector<Extent>> AllocateClusters(uint64_t count);
  void ReleaseExtents(const std::vector<Extent>& extents);
  Status GrowBlob(BlobRecord& blob, uint64_t add_clusters);
  Status ShrinkBlob(BlobRecord& blob, uint64_t remove_clusters);
  const BlobRecord* FindBlob(BlobId id) const;
  BlobRecord* FindBlob(BlobId id);

  std::vector<uint8_t> SerializeMetadata() const;
  Status DeserializeMetadata(std::span<const uint8_t> data);

  BlockDevice* device_;
  Options options_;
  uint64_t total_clusters_ = 0;
  uint64_t metadata_clusters_ = 0;
  uint64_t payload_capacity_ = 0;  // bytes per metadata payload slot
  uint64_t generation_ = 0;        // of the last durable Sync; slot = gen % 2

  mutable RwSpinLock lock_;
  std::vector<bool> cluster_bitmap_;  // true = allocated
  std::map<BlobId, BlobRecord> blobs_;
  BlobId next_id_ = 1;
  uint64_t free_clusters_ = 0;
};

}  // namespace aquila

#endif  // AQUILA_SRC_BLOB_BLOBSTORE_H_
